"""HTTP request handling for the evaluation service and the front router.

Two handlers share one JSON plumbing base (:class:`_JsonHandler`):

:class:`ServeHandler` — one connection of a *replica*
(:class:`~repro.serve.server.EvalServer`'s ThreadingHTTPServer).  Routes:

* ``POST /v1/evaluate`` — admit one wire request, block until the worker
  pool resolves it, answer ``200 {"result": ...}``.  Failures answer the
  typed error payloads of :func:`repro.serve.codec.error_payload`; overload
  answers ``429`` with a ``Retry-After`` header (the adaptive admission
  controller's measured-drain estimate) instead of queuing without bound.
* ``GET /v1/models`` — the hosted models/datasets/backends.
* ``GET /healthz`` — liveness plus queue occupancy.
* ``GET /metrics`` — request counters (with the conservation invariants),
  latency percentiles, session/coalescing stats, cache hit rate, and the
  exportable ``drain`` snapshot the front tier aggregates.

:class:`FrontHandler` — one connection of the *front router*
(:class:`~repro.serve.front.FrontServer`).  Routes:

* ``POST /v1/evaluate`` — fleet admission check, then consistent-routing
  proxy to the model's replica (with deterministic failover); replica
  answers pass through verbatim, so responses stay bit-identical.
* ``GET /v1/models`` — the fleet-wide model/dataset union.
* ``GET /v1/fleet`` — ring assignments, per-replica health, ejection
  counters: the sharding introspection surface.
* ``GET /healthz`` / ``GET /metrics`` — front liveness and the aggregated
  fleet view (counters summed, p95 merged from per-replica windows).

Everything is JSON; every response carries an exact ``Content-Length``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler
from typing import TYPE_CHECKING, Dict, Optional, cast

from repro.serve.admission import QueueFullError, ServiceClosedError

if TYPE_CHECKING:
    from repro.serve.front import FrontService
    from repro.serve.server import EvalService
from repro.serve.codec import (
    CodecError,
    UnknownDatasetError,
    UnknownModelError,
    encode_result,
    error_payload,
)

#: Largest accepted request body; a bounded queue deserves a bounded parser.
MAX_BODY_BYTES = 1 << 20


class _JsonHandler(BaseHTTPRequestHandler):
    """Shared JSON plumbing: body parsing, typed payloads, HTTP accounting.

    Subclasses route requests onto the service object their server
    carries; the service only needs a ``record_http(route, status)`` hook
    for the ``/metrics`` request table.
    """

    server_version = "repro-serve/1.3"

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002 - stdlib signature
        """Silence per-request stderr logging (metrics cover it)."""

    def _record_http(self, route: str, status: int) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _send_json(
        self,
        route: str,
        status: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self._record_http(route, status)

    def _send_error_payload(self, route: str, error: BaseException) -> None:
        status, payload = error_payload(error)
        headers: Dict[str, str] = {}
        detail = cast(Dict[str, object], payload["error"])
        retry_after = detail.get("retry_after")
        if retry_after is not None:
            headers["Retry-After"] = str(retry_after)
        self._send_json(route, status, payload, headers=headers)

    def _not_found(self) -> None:
        self._send_json(
            f"{self.command} {self.path}",
            404,
            {
                "error": {
                    "type": "not-found",
                    "message": f"no route {self.command} {self.path}",
                }
            },
        )

    # ------------------------------------------------------------------
    def _read_json_body(self) -> object:
        """The parsed JSON body, or :class:`CodecError` on any malformation."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise CodecError("Content-Length header is not an integer") from None
        if length <= 0:
            raise CodecError("request body is empty; POST a JSON object")
        if length > MAX_BODY_BYTES:
            raise CodecError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        body = self.rfile.read(length)
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise CodecError(f"request body is not valid JSON: {error}") from None


class ServeHandler(_JsonHandler):
    """Routes one HTTP connection onto the owning server's EvalService."""

    @property
    def service(self) -> "EvalService":
        # The ThreadingHTTPServer subclass (_ServeHTTPServer) carries the
        # service; BaseHTTPRequestHandler types ``server`` as BaseServer.
        return cast("EvalService", getattr(self.server, "service"))

    def _record_http(self, route: str, status: int) -> None:
        self.service.record_http(route, status)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._send_json("GET /healthz", 200, self.service.health())
        elif self.path == "/metrics":
            self._send_json("GET /metrics", 200, self.service.metrics())
        elif self.path == "/v1/models":
            self._send_json("GET /v1/models", 200, self.service.models())
        else:
            self._not_found()

    def do_POST(self) -> None:
        if self.path != "/v1/evaluate":
            self._not_found()
            return
        route = "POST /v1/evaluate"
        try:
            payload = self._read_json_body()
            job = self.service.enqueue(payload)
        except (
            QueueFullError,  # 429, Retry-After mirrored from the payload
            ServiceClosedError,  # 503
            CodecError,  # 400
            UnknownModelError,  # 404
            UnknownDatasetError,  # 404
        ) as error:
            self._send_error_payload(route, error)
            return

        if not job.done.wait(timeout=self.service.config.request_timeout):
            self._send_json(
                route,
                504,
                {
                    "error": {
                        "type": "timeout",
                        "message": (
                            "request did not complete within "
                            f"{self.service.config.request_timeout:.0f}s; it "
                            "may still finish server-side"
                        ),
                    }
                },
            )
            return
        if job.error is not None:
            self._send_error_payload(route, job.error)
            return
        self._send_json(route, 200, {"result": encode_result(job.result)})


class FrontHandler(_JsonHandler):
    """Routes one HTTP connection onto the owning server's FrontService."""

    @property
    def front(self) -> "FrontService":
        return cast("FrontService", getattr(self.server, "front"))

    def _record_http(self, route: str, status: int) -> None:
        self.front.record_http(route, status)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._send_json("GET /healthz", 200, self.front.health())
        elif self.path == "/metrics":
            self._send_json("GET /metrics", 200, self.front.metrics())
        elif self.path == "/v1/models":
            self._send_json("GET /v1/models", 200, self.front.models())
        elif self.path == "/v1/fleet":
            self._send_json("GET /v1/fleet", 200, self.front.fleet())
        else:
            self._not_found()

    def do_POST(self) -> None:
        # Imported here to keep handlers import-light for the replica-only
        # path (front pulls in the poller machinery).
        from repro.serve.front import FleetUnavailableError

        if self.path != "/v1/evaluate":
            self._not_found()
            return
        route = "POST /v1/evaluate"
        try:
            payload = self._read_json_body()
            status, headers, body = self.front.evaluate(payload)
        except (
            QueueFullError,  # fleet-level shed: 429 before any backend socket
            ServiceClosedError,  # 503: front shutting down
            CodecError,  # 400: validated at the front, never proxied
        ) as error:
            self._send_error_payload(route, error)
            return
        except FleetUnavailableError as error:
            self._send_json(
                route,
                503,
                {"error": {"type": "no-healthy-replica", "message": str(error)}},
            )
            return
        self._send_json(route, status, body, headers=headers)
