"""Tests for layers: Dense, BlockDense, Gather, FixedDense (with gradient checks)."""

import numpy as np
import pytest

from repro.nn.activations import Sigmoid, TrueNorthErf
from repro.nn.layers import BlockDense, Dense, FixedDense, Gather
from repro.nn.losses import MeanSquaredError


def numeric_weight_gradient(layer, inputs, targets, loss, param, index, eps=1e-6):
    original = param[index]
    param[index] = original + eps
    plus = loss.forward(layer.forward(inputs, training=True), targets)
    param[index] = original - eps
    minus = loss.forward(layer.forward(inputs, training=True), targets)
    param[index] = original
    return (plus - minus) / (2 * eps)


def test_dense_forward_shape_and_bias():
    layer = Dense(3, 2, rng=0)
    layer.weights[:] = 0.0
    layer.bias[:] = [1.0, -1.0]
    out = layer.forward(np.zeros((4, 3)))
    assert out.shape == (4, 2)
    assert np.allclose(out, [[1.0, -1.0]] * 4)


def test_dense_gradient_check():
    rng = np.random.default_rng(0)
    layer = Dense(4, 3, activation=Sigmoid(), rng=1)
    loss = MeanSquaredError()
    inputs = rng.random((5, 4))
    targets = rng.random((5, 3))
    predictions = layer.forward(inputs, training=True)
    grad = loss.backward(predictions, targets)
    layer.backward(grad)
    for index in [(0, 0), (2, 1), (3, 2)]:
        numeric = numeric_weight_gradient(layer, inputs, targets, loss, layer.weights, index)
        assert np.isclose(layer.grad_weights[index], numeric, atol=1e-5)
    numeric_bias = numeric_weight_gradient(layer, inputs, targets, loss, layer.bias, (1,))
    assert np.isclose(layer.grad_bias[1], numeric_bias, atol=1e-5)


def test_dense_input_gradient_check():
    rng = np.random.default_rng(3)
    layer = Dense(4, 3, activation=TrueNorthErf(sigma=1.0), rng=1)
    loss = MeanSquaredError()
    inputs = rng.random((2, 4))
    targets = rng.random((2, 3))
    predictions = layer.forward(inputs, training=True)
    grad_inputs = layer.backward(loss.backward(predictions, targets))
    eps = 1e-6
    for index in [(0, 0), (1, 3)]:
        perturbed = inputs.copy()
        perturbed[index] += eps
        plus = loss.forward(layer.forward(perturbed, training=True), targets)
        perturbed[index] -= 2 * eps
        minus = loss.forward(layer.forward(perturbed, training=True), targets)
        numeric = (plus - minus) / (2 * eps)
        assert np.isclose(grad_inputs[index], numeric, atol=1e-5)


def test_dense_without_bias_has_no_bias_param():
    layer = Dense(3, 2, use_bias=False)
    assert "bias" not in layer.params()
    assert "bias" not in layer.grads()
    assert np.all(layer.bias == 0)


def test_dense_validation():
    with pytest.raises(ValueError):
        Dense(0, 2)
    with pytest.raises(ValueError):
        Dense(2, 3, weight_init=np.zeros((3, 2)))
    layer = Dense(3, 2)
    with pytest.raises(ValueError):
        layer.forward(np.zeros((4, 5)))
    with pytest.raises(RuntimeError):
        Dense(3, 2).backward(np.zeros((4, 2)))


def test_block_dense_is_block_diagonal():
    layer = BlockDense([2, 3], [2, 2], rng=0, use_bias=False)
    inputs = np.array([[1.0, 1.0, 0.0, 0.0, 0.0]])
    out_full = layer.forward(inputs)
    # Zeroing the second block's inputs must not change the first block's output.
    assert np.allclose(out_full[0, :2], layer.blocks[0].forward(inputs[:, :2])[0])
    assert np.allclose(out_full[0, 2:], layer.blocks[1].forward(inputs[:, 2:])[0])


def test_block_dense_gradients_flow_to_each_block():
    rng = np.random.default_rng(0)
    layer = BlockDense([3, 3], [2, 2], activation=Sigmoid(), rng=0)
    loss = MeanSquaredError()
    inputs = rng.random((4, 6))
    targets = rng.random((4, 4))
    predictions = layer.forward(inputs, training=True)
    layer.backward(loss.backward(predictions, targets))
    for block in layer.blocks:
        assert np.any(block.grad_weights != 0)


def test_block_dense_params_namespaced():
    layer = BlockDense([2, 2], [1, 1], rng=0)
    names = set(layer.params())
    assert names == {"block0_weights", "block0_bias", "block1_weights", "block1_bias"}
    assert set(layer.penalized_params()) == {"block0_weights", "block1_weights"}


def test_block_dense_validation():
    with pytest.raises(ValueError):
        BlockDense([2], [1, 1])
    with pytest.raises(ValueError):
        BlockDense([], [])
    with pytest.raises(ValueError):
        BlockDense([2, 0], [1, 1])


def test_gather_selects_and_scatters():
    layer = Gather([3, 0, 0], input_dim=4)
    inputs = np.array([[10.0, 20.0, 30.0, 40.0]])
    out = layer.forward(inputs)
    assert np.array_equal(out[0], [40.0, 10.0, 10.0])
    grad = layer.backward(np.array([[1.0, 2.0, 3.0]]))
    # Index 0 appears twice, so its gradient accumulates.
    assert np.array_equal(grad[0], [5.0, 0.0, 0.0, 1.0])


def test_gather_validation():
    with pytest.raises(ValueError):
        Gather([], input_dim=4)
    with pytest.raises(ValueError):
        Gather([4], input_dim=4)
    layer = Gather([0, 1], input_dim=4)
    with pytest.raises(ValueError):
        layer.forward(np.zeros((2, 3)))


def test_fixed_dense_has_no_trainable_params():
    matrix = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    layer = FixedDense(matrix)
    assert layer.params() == {}
    out = layer.forward(np.array([[1.0, 2.0, 3.0]]), training=True)
    assert np.array_equal(out[0], [4.0, 5.0])
    grad = layer.backward(np.array([[1.0, 1.0]]))
    assert np.array_equal(grad[0], [1.0, 1.0, 2.0])


def test_fixed_dense_validation():
    with pytest.raises(ValueError):
        FixedDense(np.zeros(3))
    layer = FixedDense(np.zeros((3, 2)))
    with pytest.raises(ValueError):
        layer.forward(np.zeros((1, 4)))
    with pytest.raises(RuntimeError):
        FixedDense(np.zeros((3, 2))).backward(np.zeros((1, 2)))
