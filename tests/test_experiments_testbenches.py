"""Tests for the Table 3 test-bench configurations."""

import pytest

from repro.experiments.testbenches import (
    TEST_BENCHES,
    build_testbench_architecture,
    load_testbench_data,
)
from repro.truenorth import constants


def test_all_five_benches_defined_with_paper_structure():
    assert set(TEST_BENCHES) == {1, 2, 3, 4, 5}
    assert TEST_BENCHES[1].cores_per_layer == (4,)
    assert TEST_BENCHES[2].cores_per_layer == (16,)
    assert TEST_BENCHES[3].cores_per_layer == (49, 9, 4)
    assert TEST_BENCHES[4].cores_per_layer == (4,)
    assert TEST_BENCHES[5].cores_per_layer == (16, 9)
    assert TEST_BENCHES[1].block_stride == 12
    assert TEST_BENCHES[3].hidden_layer_count == 3
    assert TEST_BENCHES[4].dataset == "rs130"


@pytest.mark.parametrize("bench", [1, 2, 3, 4, 5])
def test_architectures_match_paper_core_counts(bench):
    config = TEST_BENCHES[bench]
    architecture = build_testbench_architecture(config)
    assert architecture.cores_per_layer == config.cores_per_layer
    assert architecture.cores_per_network == sum(config.cores_per_layer)
    assert architecture.num_classes == (10 if config.dataset == "mnist" else 3)
    # Crossbar constraints hold for every layer.
    for depth in range(len(architecture.layers)):
        for size in architecture.layer_block_sizes(depth):
            assert size <= constants.AXONS_PER_CORE
        assert architecture.layers[depth].neurons_per_core <= constants.NEURONS_PER_CORE


@pytest.mark.parametrize("bench", [1, 4])
def test_testbench_data_matches_architecture_input(bench):
    config = TEST_BENCHES[bench]
    architecture = build_testbench_architecture(config)
    splits = load_testbench_data(config, train_size=30, test_size=10, seed=0)
    assert splits.train.feature_count == architecture.input_dim
    assert splits.num_classes == architecture.num_classes


def test_rs130_data_padded_to_grid():
    config = TEST_BENCHES[4]
    splits = load_testbench_data(config, train_size=20, test_size=10, seed=0)
    assert splits.train.feature_count == 19 * 19


def test_paper_accuracy_column_recorded():
    assert TEST_BENCHES[1].paper_caffe_accuracy == pytest.approx(0.9527)
    assert TEST_BENCHES[5].paper_caffe_accuracy == pytest.approx(0.6965)


def test_testbench_chip_validation_smoke():
    from repro.experiments.testbenches import testbench_chip_validation

    report = testbench_chip_validation(
        1,
        spikes_per_frame=2,
        max_samples=20,
        context_overrides={
            "train_size": 150,
            "test_size": 60,
            "epochs": 2,
            "eval_samples": 40,
            "repeats": 1,
        },
    )
    assert report["samples"] == 20
    assert report["class_counts"].shape == (20, 10)
    assert report["predictions"].shape == (20,)
    assert 0.0 <= report["accuracy"] <= 1.0
