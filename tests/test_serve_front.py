"""Front-tier router: consistent routing, failover, fleet admission.

The front tier's promises, each pinned here:

* responses through the router are **bit-identical** to a direct
  ``Session.evaluate`` (the router adds routing, never arithmetic) —
  including through a mid-burst replica kill, which must be absorbed by
  deterministic failover with zero client-visible 5xx;
* a saturated fleet is shed at the front (429 + ``Retry-After``) computed
  from polled drain snapshots, **before any backend socket is picked** —
  asserted by the replicas' own ``received`` counters staying flat;
* ``/metrics`` aggregates the fleet: conservation counters summed (the
  invariants hold fleet-wide), p95 merged from the union of per-replica
  latency windows;
* validation failures (400) are answered at the front without burning a
  backend connection, while replica answers (404s, 429s) pass through
  with their typed payloads intact.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import EvalRequest, Session
from repro.eval.runner import ScoreCache
from repro.serve import (
    EvalServer,
    ModelRegistry,
    RequestRejectedError,
    ServeClient,
    ServeConfig,
    ServeError,
    ServiceOverloadedError,
)
from repro.serve.front import FrontConfig, FrontServer


@pytest.fixture(scope="module")
def registry(tiny_context) -> ModelRegistry:
    return ModelRegistry.from_context(tiny_context, methods=("tea",))


@pytest.fixture(scope="module")
def fleet(registry):
    """Two live replicas behind one front router."""
    replicas = [
        EvalServer(
            registry, ServeConfig(port=0, workers=2, queue_depth=16)
        ).start()
        for _ in range(2)
    ]
    config = FrontConfig(
        port=0,
        replicas=tuple(f"127.0.0.1:{replica.port}" for replica in replicas),
        poll_interval=0.1,
        request_timeout=120.0,
    )
    front = FrontServer(config).start()
    try:
        yield front, replicas
    finally:
        front.close()
        for replica in replicas:
            replica.close()


@pytest.fixture(scope="module")
def client(fleet) -> ServeClient:
    front, _ = fleet
    return ServeClient(port=front.port, timeout=120.0)


def _direct(registry, **kwargs) -> EvalRequest:
    kwargs.setdefault("dataset", registry.dataset("test"))
    return EvalRequest(model=registry.model("tea"), **kwargs)


def _replica_received(replicas):
    return [
        ServeClient(port=replica.port, timeout=30.0).metrics()["requests"][
            "received"
        ]
        for replica in replicas
    ]


def assert_fleet_invariants(fleet_requests):
    assert (
        fleet_requests["received"]
        == fleet_requests["admitted"] + fleet_requests["rejected"]
    )
    assert fleet_requests["admitted"] == (
        fleet_requests["completed"]
        + fleet_requests["failed"]
        + fleet_requests["in_flight"]
    )


# ----------------------------------------------------------------------
# routing correctness
# ----------------------------------------------------------------------
def test_routed_result_bit_identical_to_direct_session(registry, client):
    served = client.evaluate(
        model="tea", copy_levels=[1, 2], spf_levels=[1, 2], repeats=2, seed=0
    )
    direct = Session(cache=ScoreCache()).evaluate(
        _direct(registry, copy_levels=(1, 2), spf_levels=(1, 2), repeats=2, seed=0)
    )
    assert served.backend == direct.backend
    assert np.array_equal(served.scores, direct.scores)
    assert np.array_equal(served.accuracy, direct.accuracy)
    assert np.array_equal(served.labels, direct.labels)


def test_routed_chip_result_bit_identical_including_counters(registry, client):
    served = client.evaluate(
        model="tea",
        copy_levels=[1, 2],
        spf_levels=[2],
        seed=0,
        collect_spike_counters=True,
        max_samples=16,
    )
    direct = Session().evaluate(
        _direct(
            registry,
            copy_levels=(1, 2),
            spf_levels=(2,),
            seed=0,
            collect_spike_counters=True,
            max_samples=16,
        )
    )
    assert served.backend == "chip"
    assert np.array_equal(served.class_counts(), direct.class_counts())
    assert np.array_equal(served.spike_counters, direct.spike_counters)


def test_same_model_requests_stick_to_one_replica(fleet, client):
    """Consistent routing is the journal-affinity mechanism: one model's
    traffic lands on one home replica, so that replica's journal holds the
    model's whole history."""
    front, _ = fleet
    before = {
        entry["name"]: entry["proxied"]
        for entry in client.fleet()["replicas"]
    }
    for seed in (201, 202):
        client.evaluate(model="tea", copy_levels=[1], spf_levels=[1], seed=seed)
    after = {
        entry["name"]: entry["proxied"]
        for entry in client.fleet()["replicas"]
    }
    grew = [name for name in after if after[name] > before[name]]
    assert len(grew) == 1
    assert grew[0] == client.fleet()["assignments"]["tea"]


# ----------------------------------------------------------------------
# introspection
# ----------------------------------------------------------------------
def test_healthz_counts_replicas(client):
    health = client.health()
    assert health["status"] == "ok"
    assert health["replicas"] == 2
    assert health["healthy"] == 2


def test_models_is_the_fleet_union(client):
    listing = client.models()
    assert "tea" in [entry["name"] for entry in listing["models"]]
    assert "test" in [entry["name"] for entry in listing["datasets"]]


def test_fleet_endpoint_reports_ring_and_assignments(fleet, client):
    front, replicas = fleet
    view = client.fleet()
    expected = {f"127.0.0.1:{replica.port}" for replica in replicas}
    assert set(view["ring"]) == expected
    assert {entry["name"] for entry in view["replicas"]} == expected
    assert all(entry["healthy"] for entry in view["replicas"])
    # The hosted model is fingerprinted and assigned to a ring member.
    assert "tea" in view["model_fingerprints"]
    assert view["assignments"]["tea"] in expected


def test_metrics_aggregates_fleet_counters_and_latency(fleet, client):
    front, replicas = fleet
    client.evaluate(model="tea", copy_levels=[1], spf_levels=[1], seed=301)
    metrics = client.metrics()
    fleet_block = metrics["fleet"]
    assert fleet_block["replicas"] == 2
    assert fleet_block["healthy"] == 2
    assert_fleet_invariants(fleet_block["requests"])
    # The summed counters equal the sum of what each replica reports.
    assert fleet_block["requests"]["received"] == sum(
        _replica_received(replicas)
    )
    # The merged percentile comes from the union of replica windows.
    p50, p95 = (
        fleet_block["latency_p50_seconds"],
        fleet_block["latency_p95_seconds"],
    )
    assert p50 is not None and p95 is not None and p50 <= p95
    merged = sorted(
        sample
        for replica in replicas
        for sample in replica.service.admission.latencies.samples()
    )
    assert p95 in merged
    # Front-side counters conserve too: received == routed + shed + unavailable.
    front_block = metrics["front"]
    assert front_block["received"] == (
        front_block["routed"] + front_block["shed"] + front_block["unavailable"]
    )
    assert front_block["routed"] >= 1
    # Per-replica controller state is exposed per replica, not merged.
    assert set(metrics["controllers"]) == {
        f"127.0.0.1:{replica.port}" for replica in replicas
    }
    assert "POST /v1/evaluate 200" in metrics["http"]


# ----------------------------------------------------------------------
# typed errors at the front
# ----------------------------------------------------------------------
def test_validation_400_is_answered_without_touching_a_backend(fleet, client):
    front, replicas = fleet
    before = _replica_received(replicas)
    with pytest.raises(RequestRejectedError) as excinfo:
        client.evaluate_payload({"model": "tea", "copy_level": [1]})
    assert excinfo.value.status == 400
    assert _replica_received(replicas) == before


def test_unknown_model_404_passes_through_from_the_replica(client):
    with pytest.raises(RequestRejectedError) as excinfo:
        client.evaluate(model="nope")
    assert excinfo.value.status == 404
    assert excinfo.value.error_type == "unknown-model"


def test_unknown_route_is_a_404(client):
    with pytest.raises(ServeError) as excinfo:
        client._call("GET", "/v2/evaluate")
    assert excinfo.value.status == 404


# ----------------------------------------------------------------------
# failure paths (dedicated fleets: these kill and saturate replicas)
# ----------------------------------------------------------------------
def test_replica_kill_mid_burst_is_absorbed_by_failover(registry):
    """Kill the model's home replica mid-burst: every request must still
    succeed (zero client-visible 5xx) and stay bit-identical, the dead
    replica must be ejected, and a restarted replica must rejoin."""
    replicas = [
        EvalServer(
            registry, ServeConfig(port=0, workers=2, queue_depth=16)
        ).start()
        for _ in range(2)
    ]
    ports = [replica.port for replica in replicas]
    config = FrontConfig(
        port=0,
        replicas=tuple(f"127.0.0.1:{port}" for port in ports),
        poll_interval=0.1,
        request_timeout=120.0,
    )
    front = FrontServer(config).start()
    client = ServeClient(port=front.port, timeout=120.0)
    session = Session(cache=ScoreCache())
    try:
        served = {}
        for seed in range(3):
            served[seed] = client.evaluate(
                model="tea", copy_levels=[1], spf_levels=[1, 2], seed=seed
            )
        primary = client.fleet()["assignments"]["tea"]
        victim_index = ports.index(int(primary.rsplit(":", 1)[1]))
        replicas[victim_index].close()

        # The burst continues right through the kill: the first request to
        # hit the dead socket fails over within the same call.
        for seed in range(3, 6):
            served[seed] = client.evaluate(
                model="tea", copy_levels=[1], spf_levels=[1, 2], seed=seed
            )
        for seed, result in served.items():
            direct = session.evaluate(
                _direct(registry, copy_levels=(1,), spf_levels=(1, 2), seed=seed)
            )
            assert np.array_equal(result.scores, direct.scores)
            assert np.array_equal(result.accuracy, direct.accuracy)

        view = client.fleet()
        dead = {entry["name"]: entry for entry in view["replicas"]}[primary]
        assert not dead["healthy"]
        assert dead["ejections"] >= 1
        assert view["assignments"]["tea"] != primary
        assert client.health()["healthy"] == 1

        # Restart the victim on its old port: the poller must rejoin it
        # and rendezvous hashing must restore the original assignment.
        replicas[victim_index] = EvalServer(
            registry,
            ServeConfig(port=ports[victim_index], workers=2, queue_depth=16),
        ).start()
        rejoined = threading.Event()
        for _ in range(100):
            if client.health()["healthy"] == 2:
                break
            rejoined.wait(0.1)
        assert client.health()["healthy"] == 2
        assert client.fleet()["assignments"]["tea"] == primary
        result = client.evaluate(
            model="tea", copy_levels=[1], spf_levels=[1, 2], seed=0
        )
        assert np.array_equal(result.scores, served[0].scores)
    finally:
        front.close()
        for replica in replicas:
            replica.close()


def test_fleet_saturation_sheds_429_before_any_backend_socket(registry):
    """Both replicas full (workers=0 freezes the pools): the front answers
    429 from its polled drain state, and the replicas' own ``received``
    counters prove no backend connection was made for the shed request."""
    replicas = [
        EvalServer(
            registry, ServeConfig(port=0, workers=0, queue_depth=1)
        ).start()
        for _ in range(2)
    ]
    config = FrontConfig(
        port=0,
        replicas=tuple(f"127.0.0.1:{replica.port}" for replica in replicas),
        poll_interval=0.1,
        request_timeout=60.0,
    )
    front = FrontServer(config).start()
    client = ServeClient(port=front.port, timeout=60.0)
    hung = []
    try:
        # Fill each replica's bounded queue directly (not via the front,
        # so the front's own counters stay clean for the assertion).
        def fire(port, seed):
            try:
                ServeClient(port=port, timeout=60.0).evaluate(
                    model="tea", seed=seed
                )
            except ServeError:
                pass

        for index, replica in enumerate(replicas):
            thread = threading.Thread(target=fire, args=(replica.port, index))
            thread.start()
            hung.append(thread)
        settled = threading.Event()
        for _ in range(200):
            depths = [
                ServeClient(port=replica.port, timeout=30.0).metrics()[
                    "requests"
                ]["queue_depth"]
                for replica in replicas
            ]
            if depths == [1, 1]:
                break
            settled.wait(0.05)
        assert depths == [1, 1]

        front.service.refresh()  # pick up the saturated drain snapshots
        before = _replica_received(replicas)
        with pytest.raises(ServiceOverloadedError) as excinfo:
            client.evaluate(model="tea", seed=99)
        assert 1.0 <= excinfo.value.retry_after <= 60.0
        # The shed request never reached a backend: replica counters flat.
        assert _replica_received(replicas) == before
        front_block = client.metrics()["front"]
        assert front_block["shed"] >= 1
    finally:
        front.close()
        for replica in replicas:
            replica.close()
        for thread in hung:
            thread.join(timeout=30)
    assert all(not thread.is_alive() for thread in hung)


def test_per_replica_429_spills_to_the_next_preference(registry):
    """One replica saturated, the other idle: the front must spill the
    request to the next replica in preference order instead of bouncing
    the client — the fleet has capacity, so the client gets a 200."""
    # Primary discovery first: build the fleet, find tea's home, then
    # saturate only that home.
    replicas = [
        EvalServer(
            registry, ServeConfig(port=0, workers=0, queue_depth=1)
        ).start()
        for _ in range(2)
    ]
    ports = [replica.port for replica in replicas]
    config = FrontConfig(
        port=0,
        replicas=tuple(f"127.0.0.1:{port}" for port in ports),
        poll_interval=0.1,
        request_timeout=120.0,
    )
    front = FrontServer(config).start()
    client = ServeClient(port=front.port, timeout=120.0)
    hung = []
    try:
        primary = client.fleet()["assignments"]["tea"]
        primary_index = ports.index(int(primary.rsplit(":", 1)[1]))
        spare_index = 1 - primary_index
        # Restart the spare with workers so it can actually serve.
        replicas[spare_index].close()
        replicas[spare_index] = EvalServer(
            registry,
            ServeConfig(port=ports[spare_index], workers=2, queue_depth=16),
        ).start()
        ready = threading.Event()
        for _ in range(100):
            if client.health()["healthy"] == 2:
                break
            ready.wait(0.1)
        assert client.health()["healthy"] == 2

        def fire():
            try:
                ServeClient(port=ports[primary_index], timeout=60.0).evaluate(
                    model="tea", seed=0
                )
            except ServeError:
                pass

        thread = threading.Thread(target=fire)
        thread.start()
        hung.append(thread)
        settled = threading.Event()
        for _ in range(200):
            depth = ServeClient(
                port=ports[primary_index], timeout=30.0
            ).metrics()["requests"]["queue_depth"]
            if depth == 1:
                break
            settled.wait(0.05)
        assert depth == 1

        result = client.evaluate(
            model="tea", copy_levels=[1], spf_levels=[1], seed=77
        )
        assert result.seed == 77  # served by the spare, not bounced
        spare_received = _replica_received([replicas[spare_index]])[0]
        assert spare_received >= 1
    finally:
        front.close()
        for replica in replicas:
            replica.close()
        for thread in hung:
            thread.join(timeout=30)
