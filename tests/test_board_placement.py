"""Board placement: packing, copy splitting, and mesh-distance statistics.

``place_on_board`` packs each copy's layers onto as few chips as possible —
whole copies stack first-fit onto shared chips, copies larger than one chip
claim runs of consecutive empty chips — and reports per-chip occupation and
inter-chip hop statistics.  These tests pin:

* the satellite fix that ``ChipPlacement.grid_shape`` is *derived* from the
  chip configuration (it used to be hard-coded to the stock 64x64 grid);
* the packing invariants (a chip hosts either whole copies or exactly one
  shard; shard bounds partition the copy's corelets; occupation never
  exceeds capacity) under hypothesis-generated networks and boards;
* the mesh-distance statistics (``transition_chip_distances``,
  ``mesh_statistics``) on placements whose worst paths are known by
  construction — these numbers feed the exact board drain bound, so they
  are asserted here, not just computed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.board import BoardConfig, board_shape_for
from repro.mapping.placement import place_on_board, place_on_chip
from repro.truenorth.config import ChipConfig

from test_chip_batch_equivalence import random_deployed_network


def _network(depth=2, cores_per_layer=(2, 2), seed=0):
    rng = np.random.default_rng(seed)
    return random_deployed_network(
        rng, depth, list(cores_per_layer), 2, 3, 2
    ).corelet_network


def _chip(cores: int) -> ChipConfig:
    """A chip whose core grid holds exactly ``cores`` cores."""
    return ChipConfig(grid_shape=(1, cores))


# ----------------------------------------------------------------------
# satellite fix: grid_shape derives from the chip config
# ----------------------------------------------------------------------
def test_chip_placement_grid_shape_derived_from_config():
    network = _network()
    placement = place_on_chip(network, 1, ChipConfig(grid_shape=(8, 8)))
    assert placement.grid_shape == (8, 8)
    # The stock chip still reports the stock grid — via the config, not a
    # constant.
    assert place_on_chip(network).grid_shape == ChipConfig().grid_shape


def test_chip_placement_positions_follow_configured_columns():
    network = _network()  # 4 cores
    placement = place_on_chip(network, 1, ChipConfig(grid_shape=(2, 2)))
    positions = [
        placement.position(0, layer, index)
        for layer in range(2)
        for index in range(2)
    ]
    assert positions == [(0, 0), (0, 1), (1, 0), (1, 1)]


def test_chip_placement_overflow_raises():
    with pytest.raises(RuntimeError, match="needs 8 cores"):
        place_on_chip(_network(), copies=2, chip_config=ChipConfig(grid_shape=(1, 4)))


# ----------------------------------------------------------------------
# board packing
# ----------------------------------------------------------------------
def test_whole_copies_stack_first_fit():
    network = _network(depth=1, cores_per_layer=(2,))  # 2 cores per copy
    config = BoardConfig(grid_shape=(2, 1), chip_config=_chip(4))
    placement = place_on_board(network, copies=3, board_config=config)
    assert placement.per_chip_occupation() == {0: 4, 1: 2}
    assert placement.occupied_chips() == 2
    assert placement.split_copies() == ()
    by_chip = {
        segment.chips[0]: segment.copies
        for segment in placement.segments
    }
    assert by_chip == {0: (0, 1), 1: (2,)}
    assert all(not segment.split for segment in placement.segments)


def test_split_copy_claims_consecutive_empty_chips():
    network = _network()  # 4 cores, 2 layers x 2 corelets
    config = BoardConfig(grid_shape=(2, 2), chip_config=_chip(2))
    placement = place_on_board(network, copies=2, board_config=config)
    assert placement.split_copies() == (0, 1)
    segments = sorted(placement.segments, key=lambda s: s.chips[0])
    assert segments[0].chips == (0, 1) and segments[1].chips == (2, 3)
    for segment in segments:
        assert segment.split
        assert segment.shard_bounds == (0, 2, 4)
    # Layer-major flat order: layer 0 on the first shard chip, layer 1 on
    # the second.
    assert placement.chip_of(0, 0, 0) == placement.chip_of(0, 0, 1) == 0
    assert placement.chip_of(0, 1, 0) == placement.chip_of(0, 1, 1) == 1


def test_board_overflow_raises_both_branches():
    network = _network()  # 4 cores
    with pytest.raises(RuntimeError, match="no chip .* has that many free"):
        place_on_board(
            network,
            copies=3,
            board_config=BoardConfig(grid_shape=(1, 1), chip_config=_chip(8)),
        )
    with pytest.raises(RuntimeError, match="consecutive empty chips"):
        place_on_board(
            network,
            copies=2,
            board_config=BoardConfig(grid_shape=(1, 3), chip_config=_chip(2)),
        )


# ----------------------------------------------------------------------
# mesh-distance statistics (asserted, not just computed)
# ----------------------------------------------------------------------
def test_single_chip_copy_has_zero_distances():
    network = _network()
    config = BoardConfig(grid_shape=(2, 2), chip_config=_chip(4))
    placement = place_on_board(network, copies=2, board_config=config)
    for copy in range(2):
        assert placement.transition_chip_distances(copy) == [0]
    assert placement.mesh_statistics() == {
        "split_copies": 0,
        "boundary_transitions": 0,
        "max_chip_distance": 0,
    }


def test_adjacent_split_distances():
    network = _network()  # layer 0 -> chip 0, layer 1 -> chip 1
    config = BoardConfig(grid_shape=(1, 2), chip_config=_chip(2))
    placement = place_on_board(network, copies=1, board_config=config)
    assert placement.transition_chip_distances(0) == [1]
    assert placement.mesh_statistics() == {
        "split_copies": 1,
        "boundary_transitions": 1,
        "max_chip_distance": 1,
    }


def test_worst_path_spans_the_shard_run():
    # One core per chip: layer 0 on chips {0, 1}, layer 1 on chips {2, 3}
    # of a 1x4 board; the worst transition path is chip 0 -> chip 3.
    network = _network()
    config = BoardConfig(grid_shape=(1, 4), chip_config=_chip(1))
    placement = place_on_board(network, copies=1, board_config=config)
    assert placement.transition_chip_distances(0) == [3]
    stats = placement.mesh_statistics()
    assert stats["max_chip_distance"] == 3
    assert stats["boundary_transitions"] == 1


def test_depth_three_reports_one_distance_per_transition():
    network = _network(depth=3, cores_per_layer=(2, 2, 1))  # 5 cores
    config = BoardConfig(grid_shape=(1, 3), chip_config=_chip(2))
    placement = place_on_board(network, copies=1, board_config=config)
    distances = placement.transition_chip_distances(0)
    assert len(distances) == 2
    # flat order: chip0 = layer0, chip1 = layer1, chip2 = layer2's core.
    assert distances == [1, 1]


# ----------------------------------------------------------------------
# topology helpers
# ----------------------------------------------------------------------
def test_board_config_validation():
    with pytest.raises(ValueError):
        BoardConfig(grid_shape=(0, 2))
    with pytest.raises(ValueError):
        BoardConfig(link_delay=-1)
    config = BoardConfig(grid_shape=(2, 3))
    assert config.chip_count == 6
    assert config.chip_position(4) == (1, 1)
    with pytest.raises(IndexError):
        config.chip_position(6)
    # Manhattan distance, symmetric.
    assert config.chip_distance(0, 5) == config.chip_distance(5, 0) == 3


@given(
    core_count=st.integers(min_value=1, max_value=40),
    copies=st.integers(min_value=1, max_value=12),
    capacity=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=60, deadline=None)
def test_board_shape_for_always_fits(core_count, copies, capacity):
    chip = ChipConfig(grid_shape=(1, capacity))
    rows, cols = board_shape_for(core_count, copies, chip)
    chips = rows * cols
    if core_count <= capacity:
        per_chip = capacity // core_count
        assert chips * per_chip >= copies
    else:
        shards = -(-core_count // capacity)
        assert chips >= copies * shards
    assert abs(rows - cols) <= max(rows, cols)  # square-ish, sanity


# ----------------------------------------------------------------------
# hypothesis: packing invariants
# ----------------------------------------------------------------------
@given(
    depth=st.integers(min_value=1, max_value=3),
    copies=st.integers(min_value=1, max_value=4),
    capacity=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=10),
    data=st.data(),
)
@settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_board_packing_invariants(depth, copies, capacity, seed, data):
    layer_sizes = {1: (2,), 2: (2, 2), 3: (2, 2, 1)}[depth]
    network = _network(depth=depth, cores_per_layer=layer_sizes, seed=seed)
    per_copy = network.core_count
    shape = board_shape_for(per_copy, copies, _chip(capacity))
    # Sometimes over-provision the board so first-fit back-fill is exercised.
    if data.draw(st.booleans()):
        shape = (shape[0] + 1, shape[1])
    config = BoardConfig(grid_shape=shape, chip_config=_chip(capacity))
    placement = place_on_board(network, copies=copies, board_config=config)

    # Every corelet of every copy is assigned exactly once.
    expected_keys = {
        (copy, layer, index)
        for copy in range(copies)
        for layer, n in enumerate(layer_sizes)
        for index in range(n)
    }
    assert set(placement.assignments) == expected_keys
    assert placement.occupied_cores == copies * per_copy

    # Occupation never exceeds chip capacity; slots are in-grid.
    occupation = placement.per_chip_occupation()
    assert all(count <= capacity for count in occupation.values())
    for chip, row, col in placement.assignments.values():
        assert 0 <= chip < config.chip_count
        assert 0 <= row < config.chip_config.grid_shape[0]
        assert 0 <= col < config.chip_config.grid_shape[1]

    # Segments partition the copies; chips host whole copies XOR one shard.
    seg_copies = [c for segment in placement.segments for c in segment.copies]
    assert sorted(seg_copies) == list(range(copies))
    whole_chips = {
        chip
        for segment in placement.segments
        if not segment.split
        for chip in segment.chips
    }
    split_chips = [
        chip
        for segment in placement.segments
        if segment.split
        for chip in segment.chips
    ]
    assert whole_chips.isdisjoint(split_chips)
    assert len(split_chips) == len(set(split_chips))
    for segment in placement.segments:
        if segment.split:
            assert len(segment.copies) == 1
            bounds = segment.shard_bounds
            assert bounds[0] == 0 and bounds[-1] == per_copy
            assert list(bounds) == sorted(bounds)
            assert len(bounds) == len(segment.chips) + 1
            # Consecutive chips.
            assert segment.chips == tuple(
                range(segment.chips[0], segment.chips[0] + len(segment.chips))
            )
        else:
            assert len(segment.chips) == 1
            assert segment.shard_bounds == ()

    # Statistics are consistent with the per-copy distances.
    stats = placement.mesh_statistics()
    assert stats["split_copies"] == len(placement.split_copies())
    expected_boundary = 0
    expected_max = 0
    for copy in placement.split_copies():
        distances = placement.transition_chip_distances(copy)
        assert len(distances) == depth - 1
        expected_boundary += sum(1 for d in distances if d > 0)
        expected_max = max([expected_max] + distances)
    assert stats["boundary_transitions"] == expected_boundary
    assert stats["max_chip_distance"] == expected_max
    for copy in range(copies):
        if copy not in placement.split_copies():
            assert placement.transition_chip_distances(copy) == [0] * (depth - 1)
