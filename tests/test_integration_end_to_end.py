"""End-to-end integration tests: the paper's qualitative claims.

These use the calibrated (larger) shared context, so they are the slowest
tests in the suite; together they verify the reproduction's headline shape
claims on test bench 1.
"""

import pytest

from repro.core.penalties import pole_fraction
from repro.eval.accuracy import evaluate_deployed_accuracy
from repro.eval.sweep import accuracy_sweep


@pytest.fixture(scope="module")
def models(calibrated_context):
    return {
        "context": calibrated_context,
        "tea": calibrated_context.result("tea"),
        "biased": calibrated_context.result("biased"),
    }


def test_float_models_reach_useful_accuracy(models):
    assert models["tea"].float_accuracy > 0.8
    assert models["biased"].float_accuracy > 0.8
    # The biasing penalty costs at most a few points of float accuracy
    # (paper: 95.27% -> 95.03%).
    assert models["biased"].float_accuracy > models["tea"].float_accuracy - 0.06


def test_quantized_deployment_loses_accuracy_for_tea(models):
    context = models["context"]
    dataset = context.evaluation_dataset()
    deployed = evaluate_deployed_accuracy(
        models["tea"].model, dataset, copies=1, spikes_per_frame=1, repeats=3, rng=0
    )
    # Section 3.1: deploying the unpenalized model costs several accuracy
    # points at one copy / one spf (95.27% -> 90.04% in the paper).
    assert deployed.mean_accuracy < models["tea"].float_accuracy - 0.03


def test_duplication_recovers_tea_accuracy(models):
    context = models["context"]
    dataset = context.evaluation_dataset()
    sweep = accuracy_sweep(
        models["tea"].model,
        dataset,
        copy_levels=(1, 16),
        spf_levels=(1,),
        repeats=2,
        rng=0,
    )
    low = sweep.accuracy_at(1, 1)
    high = sweep.accuracy_at(16, 1)
    assert high > low + 0.02
    # Saturates toward (but does not exceed by much) the float ceiling.
    assert high <= models["tea"].float_accuracy + 0.03


def test_biased_probabilities_concentrate_at_poles(models):
    tea_pole = pole_fraction(models["tea"].model.all_probabilities())
    biased_pole = pole_fraction(models["biased"].model.all_probabilities())
    assert biased_pole > 0.75
    assert biased_pole > tea_pole + 0.3


def test_biased_beats_tea_at_minimum_duplication(models):
    context = models["context"]
    dataset = context.evaluation_dataset()
    tea = evaluate_deployed_accuracy(
        models["tea"].model, dataset, copies=1, spikes_per_frame=1, repeats=3, rng=1
    )
    biased = evaluate_deployed_accuracy(
        models["biased"].model, dataset, copies=1, spikes_per_frame=1, repeats=3, rng=1
    )
    # Figure 8: the largest gain appears at one copy / one spf.
    assert biased.mean_accuracy > tea.mean_accuracy + 0.01


def test_biased_needs_fewer_cores_for_matched_accuracy(models):
    context = models["context"]
    dataset = context.evaluation_dataset()
    tea_sweep = accuracy_sweep(
        models["tea"].model, dataset, copy_levels=(1, 2, 4, 8), spf_levels=(1,),
        repeats=2, rng=2,
    )
    biased_one_copy = evaluate_deployed_accuracy(
        models["biased"].model, dataset, copies=1, spikes_per_frame=1, repeats=2, rng=2
    )
    # Find how many copies Tea needs to reach the biased model's 1-copy accuracy.
    needed = None
    for copies in tea_sweep.copy_levels:
        if tea_sweep.accuracy_at(copies, 1) >= biased_one_copy.mean_accuracy:
            needed = copies
            break
    # Either Tea never catches up within 8 copies, or it needs strictly more
    # than one copy — both demonstrate a core saving at matched accuracy.
    assert needed is None or needed > 1
