"""Tests for the Session facade: backend selection, coalescing, caches.

Covers the no-silent-fallback rule (a chip-only feature requested from the
vectorized backend raises :class:`UnsupportedRequestError`), capability-based
auto-selection, and the request-batching guarantee that coalesced results
are bit-identical to individually evaluated ones.
"""

import numpy as np
import pytest

from repro.api import EvalRequest, ResultMemo, Session, UnsupportedRequestError
from repro.api.session import _slice_result
from repro.eval.runner import ScoreCache


@pytest.fixture(scope="module")
def trained(tiny_context):
    return tiny_context.result("tea").model, tiny_context.evaluation_dataset()


def _request(trained, **kwargs):
    model, dataset = trained
    kwargs.setdefault("copy_levels", (1, 2))
    kwargs.setdefault("spf_levels", (1, 2))
    kwargs.setdefault("repeats", 1)
    kwargs.setdefault("seed", 0)
    return EvalRequest(model=model, dataset=dataset, **kwargs)


def _session(**kwargs):
    # A private in-memory cache isolates each test from the global cache.
    kwargs.setdefault("cache", ScoreCache())
    return Session(**kwargs)


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
def test_auto_selects_vectorized_for_plain_requests(trained):
    session = _session()
    assert session.select_backend(_request(trained)) == "vectorized"


def test_auto_selects_chip_for_cycle_accurate_requests(trained):
    session = _session()
    request = _request(
        trained, spf_levels=(1,), collect_spike_counters=True
    )
    assert session.select_backend(request) == "chip"
    result = session.evaluate(request)
    assert result.backend == "chip"
    assert result.spike_counters is not None


def test_explicit_backend_overrides_auto(trained):
    session = _session(backend="reference")
    assert session.evaluate(_request(trained)).backend == "reference"


def test_unknown_backend_rejected(trained):
    with pytest.raises(KeyError):
        Session(backend="warp-drive")
    session = _session()
    with pytest.raises(KeyError):
        session.submit(_request(trained), backend="warp-drive")


# ----------------------------------------------------------------------
# capability mismatch: loud errors, never a silent fallback
# ----------------------------------------------------------------------
def test_chip_feature_on_vectorized_backend_raises(trained):
    session = _session(backend="vectorized")
    with pytest.raises(UnsupportedRequestError, match="cycle-accurate"):
        session.evaluate(
            _request(trained, spf_levels=(1,), collect_spike_counters=True)
        )


def test_router_delay_on_reference_backend_raises(trained):
    session = _session()
    with pytest.raises(UnsupportedRequestError, match="router_delay"):
        session.evaluate(
            _request(trained, spf_levels=(1,), router_delay=2), backend="reference"
        )


def test_spf_grid_on_chip_backend_matches_per_level_requests(trained):
    """Multi-spf chip grids (one folded pass per level) match the levels
    evaluated one request at a time, bit for bit."""
    session = _session()
    grid = session.evaluate(_request(trained, spf_levels=(1, 2)), backend="chip")
    assert grid.backend == "chip"
    for column, spf in enumerate(grid.spf_levels):
        single = session.evaluate(
            _request(trained, spf_levels=(spf,)), backend="chip"
        )
        np.testing.assert_array_equal(
            grid.class_counts()[:, :, column], single.class_counts()[:, :, 0]
        )
        np.testing.assert_array_equal(
            grid.scores[:, :, column], single.scores[:, :, 0]
        )


def test_capability_error_does_not_run_another_backend(trained):
    """The rejected request must not leak to a different backend."""
    session = _session(backend="vectorized")
    with pytest.raises(UnsupportedRequestError):
        session.evaluate(
            _request(trained, spf_levels=(1,), collect_spike_counters=True)
        )
    assert "chip" not in session._backends
    assert session.stats.engine_passes == 0  # nothing ran anywhere


def test_failed_request_does_not_abort_the_batch(trained):
    """A capability failure resolves its own handle; the rest still serve."""
    session = _session(backend="vectorized")
    bad = session.submit(
        _request(trained, spf_levels=(1,), collect_spike_counters=True)
    )
    good = session.submit(_request(trained))
    session.flush()
    assert good.result().backend == "vectorized"
    with pytest.raises(UnsupportedRequestError):
        bad.result()


# ----------------------------------------------------------------------
# request batching / coalescing
# ----------------------------------------------------------------------
def test_submit_flush_coalesces_same_fingerprint(trained):
    session = _session(backend="vectorized")
    full = session.submit(_request(trained, copy_levels=(1, 2), spf_levels=(1, 2)))
    point = session.submit(_request(trained, copy_levels=(2,), spf_levels=(2,)))
    sub = session.submit(_request(trained, copy_levels=(1, 2), spf_levels=(2,)))
    assert not full.done
    session.flush()
    assert full.done and point.done and sub.done
    assert session.stats.submitted == 3
    assert session.stats.engine_passes == 1
    assert session.stats.coalesced_requests == 2
    # The sliced sub-results match the full grid exactly.
    assert np.array_equal(point.result().scores[:, 0, 0], full.result().scores[:, 1, 1])
    assert np.array_equal(sub.result().scores[:, :, 0], full.result().scores[:, :, 1])


def test_coalesced_result_bit_identical_to_individual(trained):
    individual = _session(backend="vectorized").evaluate(
        _request(trained, copy_levels=(2,), spf_levels=(2,))
    )
    session = _session(backend="vectorized")
    session.submit(_request(trained, copy_levels=(1, 2), spf_levels=(1, 2)))
    coalesced = session.submit(_request(trained, copy_levels=(2,), spf_levels=(2,)))
    session.flush()
    assert np.array_equal(coalesced.result().scores, individual.scores)
    assert np.array_equal(coalesced.result().accuracy, individual.accuracy)
    assert np.array_equal(coalesced.result().cores, individual.cores)


def test_different_grid_maxima_do_not_coalesce(trained):
    """Only passes over the same largest configuration share bits."""
    session = _session(backend="vectorized")
    session.submit(_request(trained, copy_levels=(1, 2)))
    session.submit(_request(trained, copy_levels=(1, 4)))
    session.flush()
    assert session.stats.engine_passes == 2
    assert session.stats.coalesced_requests == 0


def test_fresh_entropy_requests_never_coalesce(trained):
    session = _session(backend="vectorized")
    session.submit(_request(trained, seed=None))
    session.submit(_request(trained, seed=None))
    session.flush()
    assert session.stats.engine_passes == 2
    assert session.stats.coalesced_requests == 0


def test_result_triggers_flush_on_demand(trained):
    session = _session(backend="vectorized")
    pending = session.submit(_request(trained))
    result = pending.result()  # no explicit flush
    assert result.backend == "vectorized"
    assert session.stats.flushes == 1


def test_coalescing_on_reference_backend(trained):
    """Coalescing is backend-agnostic: the uncached reference loop also
    serves grouped requests with one pass."""
    session = _session(backend="reference")
    a = session.submit(_request(trained, copy_levels=(1, 2), spf_levels=(1,)))
    b = session.submit(_request(trained, copy_levels=(2,), spf_levels=(1,)))
    session.flush()
    assert session.stats.engine_passes == 1
    assert np.array_equal(a.result().scores[:, 1], b.result().scores[:, 0])


def test_key_failure_does_not_drop_other_requests(trained):
    """A request whose coalescing key cannot be computed (here: a backend
    factory that fails to construct) resolves alone; the rest still serve."""
    from repro.api import register_backend
    from repro.api import backends as backends_module

    def _broken_factory():
        raise RuntimeError("factory needs configuration")

    register_backend("broken-test-backend", _broken_factory)
    try:
        session = _session(backend="vectorized")
        good = session.submit(_request(trained))
        bad = session.submit(_request(trained), backend="broken-test-backend")
        session.flush()
        assert good.result().backend == "vectorized"
        with pytest.raises(RuntimeError, match="factory needs configuration"):
            bad.result()
    finally:
        del backends_module._REGISTRY["broken-test-backend"]


def test_engine_passes_exclude_cache_hits(trained):
    """A cache-served evaluation is not counted as an engine pass."""
    session = _session(backend="vectorized")
    session.evaluate(_request(trained))
    assert session.stats.engine_passes == 1
    session.evaluate(_request(trained))  # served from the in-memory cache
    assert session.stats.engine_passes == 1
    backend = session.backend("vectorized")
    assert backend.passes == 1


# ----------------------------------------------------------------------
# cache ownership
# ----------------------------------------------------------------------
def test_session_threads_disk_cache_into_vectorized_backend(trained, tmp_path):
    session = _session(backend="vectorized", cache_dir=str(tmp_path))
    session.evaluate(_request(trained))
    backend = session.backend("vectorized")
    assert backend.cache_dir == str(tmp_path)
    entries = [n for n in tmp_path.iterdir() if n.name.startswith("scores-")]
    assert len(entries) == 1

    # A second session over the same directory is served from disk: the
    # score tensors round-trip bit for bit.
    warm = _session(backend="vectorized", cache_dir=str(tmp_path))
    first = session.evaluate(_request(trained))
    second = warm.evaluate(_request(trained))
    assert np.array_equal(first.scores, second.scores)


def test_session_cache_max_bytes_reaches_runner(trained, tmp_path):
    session = _session(
        backend="vectorized", cache_dir=str(tmp_path), cache_max_bytes=1
    )
    session.evaluate(_request(trained))
    # The bound is enforced on write; only the newest entry survives.
    entries = [n for n in tmp_path.iterdir() if n.name.startswith("scores-")]
    assert len(entries) == 1
    session.evaluate(_request(trained, seed=123))
    entries = [n for n in tmp_path.iterdir() if n.name.startswith("scores-")]
    assert len(entries) == 1


# ----------------------------------------------------------------------
# result memoization
# ----------------------------------------------------------------------
def test_result_memo_serves_repeat_without_engine_pass(trained):
    memo = ResultMemo()
    session = _session(backend="vectorized", result_memo=memo)
    first = session.evaluate(_request(trained, seed=31))
    passes = session.stats.engine_passes
    second = session.evaluate(_request(trained, seed=31))
    assert session.stats.engine_passes == passes
    assert memo.hits == 1
    assert np.array_equal(first.scores, second.scores)
    assert np.array_equal(first.accuracy, second.accuracy)


def test_result_memo_covers_chip_backend(trained):
    # The chip backend has no score cache (cacheable=False); the memo is
    # the only tier that can serve its repeats, and must do so exactly.
    memo = ResultMemo()
    session = _session(backend="chip", result_memo=memo)
    request = _request(
        trained,
        copy_levels=(1,),
        spf_levels=(2,),
        seed=5,
        collect_spike_counters=True,
        max_samples=12,
    )
    first = session.evaluate(request)
    passes = session.stats.engine_passes
    second = session.evaluate(request)
    assert session.stats.engine_passes == passes
    assert np.array_equal(first.class_counts(), second.class_counts())
    assert np.array_equal(first.spike_counters, second.spike_counters)


def test_result_memo_slices_subgrid_out_of_wider_entry(trained):
    # Same grid *maxima* (the coalescing key), fewer reported levels: the
    # memoized union entry serves the sub-grid read without recomputation.
    memo = ResultMemo()
    session = _session(backend="vectorized", result_memo=memo)
    wide = session.evaluate(
        _request(trained, copy_levels=(1, 2), spf_levels=(1, 2), seed=8)
    )
    passes = session.stats.engine_passes
    narrow = session.evaluate(
        _request(trained, copy_levels=(2,), spf_levels=(2,), seed=8)
    )
    assert session.stats.engine_passes == passes  # sliced, not recomputed
    assert np.array_equal(narrow.scores, wide.scores[:, 1:2][:, :, 1:2])


def test_result_memo_is_shared_across_sessions(trained):
    memo = ResultMemo()
    cache = ScoreCache()
    one = Session(backend="vectorized", cache=cache, result_memo=memo)
    two = Session(backend="vectorized", cache=cache, result_memo=memo)
    first = one.evaluate(_request(trained, seed=12))
    second = two.evaluate(_request(trained, seed=12))
    assert two.stats.engine_passes == 0
    assert np.array_equal(first.scores, second.scores)


def test_seed_none_is_never_memoized(trained):
    memo = ResultMemo()
    session = _session(backend="vectorized", result_memo=memo)
    session.evaluate(_request(trained, seed=None))
    assert len(memo) == 0
    assert memo.hits == 0


def test_cached_result_and_memoize_result_round_trip(trained):
    donor = _session(backend="vectorized", result_memo=ResultMemo())
    request = _request(trained, seed=14)
    result = donor.evaluate(request)

    memo = ResultMemo()
    receiver = Session(backend="vectorized", cache=ScoreCache(), result_memo=memo)
    assert receiver.cached_result(request) is None
    receiver.memoize_result(request, result)
    served = receiver.cached_result(request)
    assert served is not None
    assert receiver.stats.engine_passes == 0
    assert np.array_equal(served.scores, result.scores)
    # Sub-grid reads (same maxima, fewer levels) come off the entry too.
    narrow = receiver.cached_result(
        _request(trained, copy_levels=(2,), spf_levels=(1, 2), seed=14)
    )
    assert narrow is not None
    assert np.array_equal(narrow.scores, result.scores[:, 1:2])


def test_memo_lru_eviction_keeps_capacity(trained):
    memo = ResultMemo(max_entries=2)
    session = _session(backend="vectorized", result_memo=memo)
    for seed in (41, 42, 43):
        session.evaluate(_request(trained, copy_levels=(1,), spf_levels=(1,), seed=seed))
    assert len(memo) == 2
    # The oldest entry (seed=41) was evicted; serving it again recomputes.
    passes = session.stats.engine_passes
    session.evaluate(_request(trained, copy_levels=(1,), spf_levels=(1,), seed=41))
    assert session.stats.engine_passes >= passes  # engine or score cache
    assert memo.snapshot()["entries"] == 2


def test_memo_store_keeps_wider_entry(trained):
    memo = ResultMemo()
    session = _session(backend="vectorized", result_memo=memo)
    wide_request = _request(trained, copy_levels=(1, 2), spf_levels=(1, 2), seed=9)
    wide = session.evaluate(wide_request)
    # Re-storing a narrower result under the same key must not shrink
    # what the memo can serve.
    session.memoize_result(
        _request(trained, copy_levels=(2,), spf_levels=(1, 2), seed=9),
        _slice_result(wide, _request(trained, copy_levels=(2,), spf_levels=(1, 2), seed=9)),
    )
    still_wide = session.cached_result(wide_request)
    assert still_wide is not None
    assert np.array_equal(still_wide.scores, wide.scores)


def test_memo_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        ResultMemo(max_entries=0)
