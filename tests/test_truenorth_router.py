"""Tests for the spike router."""

import numpy as np
import pytest

from repro.truenorth.router import SpikeRouter


def test_spikes_delivered_after_delay():
    router = SpikeRouter(delay=1)
    router.connect(source_core=0, source_neuron=2, target_core=1, target_axon=5)
    submitted = router.submit(core_id=0, spikes=np.array([0, 0, 1, 0]), tick=0)
    assert submitted == 1
    assert router.deliver(tick=0, axons_per_core=8) == {}
    delivery = router.deliver(tick=1, axons_per_core=8)
    assert 1 in delivery
    assert delivery[1][5] == 1


def test_unrouted_spikes_dropped():
    router = SpikeRouter()
    submitted = router.submit(core_id=0, spikes=np.array([1, 1]), tick=0)
    assert submitted == 0
    assert router.deliver(tick=1, axons_per_core=4) == {}


def test_multiple_spikes_merge_on_axon_vector():
    router = SpikeRouter()
    router.connect(0, 0, 2, 1)
    router.connect(0, 1, 2, 3)
    router.submit(0, np.array([1, 1]), tick=5)
    delivery = router.deliver(tick=6, axons_per_core=4)
    assert list(delivery[2]) == [0, 1, 0, 1]


def test_hop_counting_with_positions():
    router = SpikeRouter()
    router.set_core_position(0, 0, 0)
    router.set_core_position(1, 2, 3)
    router.connect(0, 0, 1, 0)
    router.submit(0, np.array([1]), tick=0)
    router.deliver(tick=1, axons_per_core=2)
    assert router.hop_count == 5
    assert router.delivered_count == 1


def test_invalid_target_axon_raises():
    router = SpikeRouter()
    router.connect(0, 0, 1, 10)
    router.submit(0, np.array([1]), tick=0)
    with pytest.raises(IndexError):
        router.deliver(tick=1, axons_per_core=4)


def test_zero_delay_delivers_same_tick():
    router = SpikeRouter(delay=0)
    router.connect(0, 0, 1, 0)
    router.submit(0, np.array([1]), tick=7)
    delivery = router.deliver(tick=7, axons_per_core=2)
    assert delivery[1][0] == 1


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        SpikeRouter(delay=-1)


def test_pending_events_enumeration():
    router = SpikeRouter()
    router.connect(0, 0, 1, 0)
    router.connect(0, 1, 1, 1)
    router.submit(0, np.array([1, 1]), tick=0)
    events = list(router.pending_events())
    assert len(events) == 2
    assert {e.target_axon for e in events} == {0, 1}
    assert router.route_count == 2
