"""Tests for the stride-based block partitioning (paper Figure 3 / Table 3)."""

import pytest

from repro.mapping.blocks import stride_blocks


def test_paper_testbench_block_counts():
    # Table 3: MNIST 28x28, 16x16 windows.
    assert stride_blocks((28, 28), (16, 16), 12).block_count == 4
    assert stride_blocks((28, 28), (16, 16), 4).block_count == 16
    assert stride_blocks((28, 28), (16, 16), 2).block_count == 49
    # RS130 reshaped to 19x19.
    assert stride_blocks((19, 19), (16, 16), 3).block_count == 4
    assert stride_blocks((19, 19), (16, 16), 1).block_count == 16


def test_blocks_have_core_sized_pixel_sets():
    partition = stride_blocks((28, 28), (16, 16), 12)
    assert partition.block_size == 256
    for block in partition.blocks:
        assert len(block) == 256
        assert len(set(block)) == 256  # no duplicate pixels inside one block


def test_blocks_cover_every_pixel():
    for stride in (12, 4, 2):
        partition = stride_blocks((28, 28), (16, 16), stride)
        coverage = partition.coverage()
        assert coverage.min() >= 1


def test_non_overlapping_when_stride_equals_block():
    partition = stride_blocks((32, 32), (16, 16), 16)
    coverage = partition.coverage()
    assert coverage.max() == 1
    assert partition.block_count == 4


def test_overlap_when_stride_smaller_than_block():
    partition = stride_blocks((28, 28), (16, 16), 12)
    assert partition.coverage().max() > 1


def test_block_indices_are_row_major_windows():
    partition = stride_blocks((4, 4), (2, 2), 2)
    assert partition.block_count == 4
    assert partition.blocks[0] == (0, 1, 4, 5)
    assert partition.blocks[1] == (2, 3, 6, 7)
    assert partition.blocks[2] == (8, 9, 12, 13)
    assert partition.blocks[3] == (10, 11, 14, 15)
    assert partition.grid_shape() == (2, 2)


def test_final_position_flush_with_border():
    # 10-wide image, 4-wide window, stride 3 -> offsets 0, 3, 6 (and the flush
    # fit at 6 is already included; a stride of 4 adds the flush fit at 6).
    partition = stride_blocks((4, 10), (4, 4), 4)
    columns = {block[0] % 10 for block in partition.blocks}
    assert 6 in columns


def test_validation():
    with pytest.raises(ValueError):
        stride_blocks((10, 10), (16, 16), 2)  # window larger than image
    with pytest.raises(ValueError):
        stride_blocks((10, 10), (4, 4), 0)
    with pytest.raises(ValueError):
        stride_blocks((0, 10), (4, 4), 2)
    with pytest.raises(ValueError):
        stride_blocks((10, 10), (0, 4), 2)
