"""Multi-copy chip engine vs the one-chip-per-copy loop: bit-identical.

The multi-copy engine programs C sampled copies side by side into one chip
image (stacked per-core crossbar tensors, shared route table, per-copy LFSR
streams) and advances all ``C * batch`` rows in lock-step
(:func:`repro.mapping.pipeline.run_chip_inference_multicopy`).  These
hypothesis-driven property tests pin it against C independent
:func:`run_chip_inference_batch` runs at ``atol=0`` over copies in
{1, 2, 5}, router delays > 1, history-free and stateful LIF neurons, and
stochastic-synapse deployments — comparing per-copy class counts, per-core
spike counters, summed router delivered/hop counters, and (in stochastic
mode) the final per-copy LFSR register states.  A mid-run ``reset()`` must
preserve the programmed routes and replay the identical run.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mapping.deploy import DeployedNetwork
from repro.mapping.pipeline import (
    program_chip,
    program_chip_multicopy,
    run_chip_inference,
    run_chip_inference_batch,
    run_chip_inference_multicopy,
)
from repro.truenorth.config import NeuronConfig
from repro.truenorth.crossbar import SynapticCrossbar

from test_chip_batch_equivalence import random_deployed_network

#: cores-per-layer shape exercised at each depth (small on purpose: the
#: hypothesis matrix multiplies runtimes by copies + 1 chip runs).
_SHAPES = {1: (2,), 2: (2, 2), 3: (2, 2, 1)}

#: the stochastic deployment neuron (unit weight table, per-tick sampling).
_STOCHASTIC = NeuronConfig(
    weight_table=(1, -1, 0, 0), history_free=True, stochastic_synapses=True
)


def random_deployed_copies(
    rng: np.random.Generator,
    count: int,
    depth: int,
    fractional_probabilities: bool = False,
):
    """C copies sharing one random topology, each with its own weights."""
    base = random_deployed_network(
        rng,
        depth=depth,
        cores_per_layer=_SHAPES[depth],
        neurons_per_core=7,
        axons_per_first_core=10,
        num_classes=4,
        fractional_probabilities=fractional_probabilities,
    )
    copies = [base]
    for _ in range(count - 1):
        weights = [
            [
                rng.integers(-1, 2, size=matrix.shape).astype(float)
                for matrix in layer
            ]
            for layer in base.sampled_weights
        ]
        copies.append(
            DeployedNetwork(
                corelet_network=base.corelet_network, sampled_weights=weights
            )
        )
    return copies


def run_percopy_loop(copies, volumes, neuron_config, delay, copy_seeds):
    """The reference: one programmed chip and one batched pass per copy."""
    counts, spikes, states = [], [], []
    delivered = hops = 0
    for index, copy in enumerate(copies):
        chip, core_ids = program_chip(
            copy,
            neuron_config=neuron_config,
            router_delay=delay,
            core_seed=0 if copy_seeds is None else copy_seeds[index],
        )
        counts.append(run_chip_inference_batch(chip, copy, core_ids, volumes))
        order = [cid for layer in core_ids for cid in layer]
        spikes.append(np.stack([chip.core(k).batch_spike_counts for k in order]))
        states.append([chip.core(k).prng.state for k in order])
        delivered += chip.router.delivered_count
        hops += chip.router.hop_count
    return np.stack(counts), np.stack(spikes), states, (delivered, hops)


def assert_multicopy_matches_percopy(
    copies, volumes, neuron_config=None, delay=1, copy_seeds=None
):
    """Program both ways, run both engines, compare everything at atol=0."""
    counts, spikes, states, router = run_percopy_loop(
        copies, volumes, neuron_config, delay, copy_seeds
    )
    chip, core_ids = program_chip_multicopy(
        copies, neuron_config=neuron_config, router_delay=delay
    )
    multi = run_chip_inference_multicopy(
        chip, copies, core_ids, volumes, copy_seeds=copy_seeds
    )
    order = [cid for layer in core_ids for cid in layer]
    multi_spikes = np.stack(
        [chip.core(k).multicopy_spike_counts for k in order], axis=1
    )
    assert np.array_equal(counts, multi)
    assert np.array_equal(spikes, multi_spikes)
    assert (chip.router.delivered_count, chip.router.hop_count) == router
    if chip.core(order[0]).copy_prngs is not None:
        multi_states = [
            [chip.core(k).copy_prngs[c].state for k in order]
            for c in range(len(copies))
        ]
        assert multi_states == states
    assert not chip.router.has_pending()
    return chip, core_ids, multi


# ----------------------------------------------------------------------
# property tests
# ----------------------------------------------------------------------
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_copies=st.sampled_from([1, 2, 5]),
    depth=st.sampled_from([1, 2, 3]),
    delay=st.sampled_from([1, 2, 3]),
    lif=st.booleans(),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_multicopy_bit_identical_to_percopy_loop(n_copies, depth, delay, lif, seed):
    rng = np.random.default_rng(seed)
    copies = random_deployed_copies(rng, n_copies, depth)
    neuron_config = (
        NeuronConfig(threshold=int(rng.integers(1, 3)), history_free=False)
        if lif
        else None
    )
    volumes = (
        rng.random((4, 3, copies[0].corelet_network.input_dim)) < 0.45
    ).astype(np.int8)
    assert_multicopy_matches_percopy(
        copies, volumes, neuron_config=neuron_config, delay=delay
    )


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_copies=st.sampled_from([1, 2, 5]),
    depth=st.sampled_from([1, 2]),
    delay=st.sampled_from([1, 2]),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_multicopy_stochastic_lfsr_streams_bit_identical(
    n_copies, depth, delay, seed
):
    """Per-copy LFSR streams equal the one-chip-per-copy simulation's.

    Each copy is assigned its own ``core_seed`` (per-copy loop) /
    ``copy_seeds`` entry (multi-copy image); counts, spike counters, and the
    final LFSR register of every (copy, core) must coincide.
    """
    rng = np.random.default_rng(seed)
    copies = random_deployed_copies(
        rng, n_copies, depth, fractional_probabilities=True
    )
    copy_seeds = [int(s) for s in rng.integers(1, 2**16, size=n_copies)]
    volumes = (
        rng.random((3, 3, copies[0].corelet_network.input_dim)) < 0.5
    ).astype(np.int8)
    chip, _, counts = assert_multicopy_matches_percopy(
        copies,
        volumes,
        neuron_config=_STOCHASTIC,
        delay=delay,
        copy_seeds=copy_seeds,
    )
    assert chip.copies == n_copies


def test_distinct_copy_seeds_give_distinct_realizations():
    """Different LFSR streams actually change the outcome (non-vacuity)."""
    rng = np.random.default_rng(9)
    copies = random_deployed_copies(rng, 2, 2, fractional_probabilities=True)
    volumes = (
        rng.random((6, 4, copies[0].corelet_network.input_dim)) < 0.5
    ).astype(np.int8)
    chip, core_ids = program_chip_multicopy(copies, neuron_config=_STOCHASTIC)
    counts = run_chip_inference_multicopy(
        chip, copies, core_ids, volumes, copy_seeds=[7, 4242]
    )
    assert counts.sum() > 0
    assert not np.array_equal(counts[0], counts[1])
    # Identical seeds collapse the copies onto one stream (shared
    # stochastic programming: only the PRNG distinguishes them).
    same = run_chip_inference_multicopy(
        chip, copies, core_ids, volumes, copy_seeds=[7, 7]
    )
    assert np.array_equal(same[0], same[1])


@pytest.mark.parametrize(
    "neuron_config",
    [
        # Non-zero reset potentials shift the history-free firing rule to
        # reset + sums - leak >= threshold; the fused fast path must use
        # the same effective threshold (it once assumed reset == 0).
        NeuronConfig(threshold=0, leak=0, reset_potential=-1, history_free=True),
        NeuronConfig(threshold=1, leak=0, reset_potential=1, history_free=True),
        NeuronConfig(threshold=1, leak=0, reset_potential=-1, history_free=True),
    ],
)
def test_fused_path_respects_reset_potential(neuron_config):
    rng = np.random.default_rng(13)
    copies = random_deployed_copies(rng, 3, 2)
    volumes = (
        rng.random((5, 4, copies[0].corelet_network.input_dim)) < 0.45
    ).astype(np.int8)
    _, _, counts = assert_multicopy_matches_percopy(
        copies, volumes, neuron_config=neuron_config
    )
    assert counts.sum() > 0  # a silent run would make the case vacuous


def test_stochastic_multicopy_rejects_per_copy_probabilities():
    """Stochastic images share one programming; divergent copies must raise."""
    from repro.mapping.corelet import Corelet, CoreletNetwork

    rng = np.random.default_rng(17)
    a = random_deployed_copies(rng, 1, 1, fractional_probabilities=True)[0]
    net_a = a.corelet_network
    # Same topology, different Bernoulli probabilities: fine
    # deterministically, an error in stochastic mode instead of silently
    # programming copy 0's tensors for both copies.
    net_b = CoreletNetwork(
        corelets=[
            [
                Corelet(
                    layer=c.layer,
                    index=c.index,
                    input_channels=c.input_channels,
                    probabilities=c.probabilities * 0.5,
                    synaptic_values=c.synaptic_values,
                    output_channels=c.output_channels,
                )
                for c in layer
            ]
            for layer in net_a.corelets
        ],
        class_assignment=net_a.class_assignment,
        num_classes=net_a.num_classes,
        input_dim=net_a.input_dim,
    )
    b = DeployedNetwork(corelet_network=net_b, sampled_weights=a.sampled_weights)
    program_chip_multicopy([a, b])
    with pytest.raises(ValueError, match="stochastic multi-copy image"):
        program_chip_multicopy([a, b], neuron_config=_STOCHASTIC)
    chip, core_ids = program_chip_multicopy([a, a], neuron_config=_STOCHASTIC)
    assert chip.occupied_core_ids() == [cid for layer in core_ids for cid in layer]


def test_midrun_reset_preserves_routes_and_replays():
    """chip.reset() between multi-copy runs keeps programming and routes."""
    rng = np.random.default_rng(21)
    copies = random_deployed_copies(rng, 3, 2, fractional_probabilities=True)
    volumes = (
        rng.random((5, 4, copies[0].corelet_network.input_dim)) < 0.5
    ).astype(np.int8)
    chip, core_ids = program_chip_multicopy(copies, neuron_config=_STOCHASTIC)
    seeds = [3, 999, 31337]
    first = run_chip_inference_multicopy(
        chip, copies, core_ids, volumes, copy_seeds=seeds
    )
    assert first.sum() > 0
    # Interrupt a fresh run mid-flight, then reset: routes must survive.
    chip.begin_batch(3 * volumes.shape[0], copies=3, copy_seeds=seeds)
    chip.step_batch()
    chip.reset()
    assert chip.batch_size is None and chip.copies == 1
    again = run_chip_inference_multicopy(
        chip, copies, core_ids, volumes, copy_seeds=seeds
    )
    assert np.array_equal(first, again)


# ----------------------------------------------------------------------
# mode and shape guards
# ----------------------------------------------------------------------
def test_begin_batch_copy_guards():
    rng = np.random.default_rng(2)
    copies = random_deployed_copies(rng, 2, 1)
    chip, _ = program_chip_multicopy(copies)
    with pytest.raises(ValueError, match="not divisible"):
        chip.begin_batch(5, copies=2)
    with pytest.raises(ValueError, match="programmed for 2 copies"):
        chip.begin_batch(9, copies=3)
    with pytest.raises(ValueError, match="copy seeds"):
        chip.begin_batch(4, copies=2, copy_seeds=[1])
    with pytest.raises(ValueError, match="copies must be positive"):
        chip.begin_batch(4, copies=0)


def test_crossbar_copy_stack_guards():
    crossbar = SynapticCrossbar(axons=4, neurons=3)
    with pytest.raises(ValueError, match="copies, 4, 3"):
        crossbar.set_copy_signed_weights(np.zeros((4, 3), dtype=np.int64))
    crossbar.set_copy_signed_weights(np.ones((2, 4, 3), dtype=np.int64))
    with pytest.raises(ValueError, match="does not match"):
        crossbar.set_copy_probabilities(np.full((3, 4, 3), 0.5))
    with pytest.raises(ValueError, match="programmed for 2 copies"):
        crossbar.integrate_multicopy(np.zeros((3, 5, 4), dtype=np.int8))
    with pytest.raises(ValueError, match="one PRNG per"):
        crossbar.integrate_multicopy(
            np.zeros((2, 5, 4), dtype=np.int8), stochastic=True
        )


def test_scalar_paths_reject_multicopy_programming():
    """chip.step / run_chip_inference on a multi-copy image raise loudly.

    The single-copy programming of a stacked crossbar is empty, so the
    scalar path would otherwise return well-shaped all-zero results.
    """
    rng = np.random.default_rng(8)
    copies = random_deployed_copies(rng, 2, 1)
    chip, core_ids = program_chip_multicopy(copies)
    frames = np.zeros((2, copies[0].corelet_network.input_dim), dtype=np.int8)
    with pytest.raises(ValueError, match="copy programming"):
        run_chip_inference(chip, copies[0], core_ids, frames)
    chip.reset()
    with pytest.raises(ValueError, match="copy programming"):
        chip.step()


def test_multicopy_driver_shape_guards():
    rng = np.random.default_rng(4)
    copies = random_deployed_copies(rng, 2, 1)
    chip, core_ids = program_chip_multicopy(copies)
    input_dim = copies[0].corelet_network.input_dim
    with pytest.raises(ValueError, match="expected volumes"):
        run_chip_inference_multicopy(
            chip, copies, core_ids, np.zeros((3, input_dim), dtype=np.int8)
        )
    with pytest.raises(ValueError, match="2 copy seeds"):
        run_chip_inference_multicopy(
            chip,
            copies,
            core_ids,
            np.zeros((2, 2, input_dim), dtype=np.int8),
            copy_seeds=[1, 2, 3],
        )
    empty = run_chip_inference_multicopy(
        chip, copies, core_ids, np.zeros((0, 2, input_dim), dtype=np.int8)
    )
    assert empty.shape == (2, 0, copies[0].corelet_network.num_classes)


def test_mismatched_topologies_rejected():
    rng = np.random.default_rng(6)
    a = random_deployed_copies(rng, 1, 2)[0]
    b = random_deployed_network(
        rng,
        depth=2,
        cores_per_layer=(2, 2),
        neurons_per_core=5,  # different readout layout than _SHAPES[2]
        axons_per_first_core=10,
        num_classes=4,
    )
    with pytest.raises(ValueError, match="different corelet topology"):
        program_chip_multicopy([a, b])
