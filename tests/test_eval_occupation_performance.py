"""Tests for core-occupation and performance accounting."""

import pytest

from repro.core.tea import TeaLearning
from repro.eval.occupation import (
    chip_utilization,
    core_occupation,
    max_copies_on_chip,
    occupation_table,
)
from repro.eval.performance import frames_to_latency, speedup_between, throughput


@pytest.fixture(scope="module")
def model(small_architecture, small_dataset):
    return TeaLearning(epochs=2, seed=0).train(small_architecture, small_dataset).model


def test_core_occupation_scales_with_copies(model):
    per_copy = model.cores_per_copy
    assert core_occupation(model, 1) == per_copy
    assert core_occupation(model, 16) == 16 * per_copy
    with pytest.raises(ValueError):
        core_occupation(model, 0)


def test_occupation_table_rows(model):
    rows = occupation_table(model, [1, 2, 4])
    assert [row["copies"] for row in rows] == [1, 2, 4]
    assert rows[-1]["cores"] == 4 * model.cores_per_copy


def test_chip_utilization_and_max_copies(model):
    utilization = chip_utilization(model, copies=2, chip_cores=4096)
    assert utilization == pytest.approx(2 * model.cores_per_copy / 4096)
    assert max_copies_on_chip(model, chip_cores=4096) == 4096 // model.cores_per_copy
    with pytest.raises(ValueError):
        chip_utilization(model, 1, chip_cores=0)
    with pytest.raises(ValueError):
        max_copies_on_chip(model, chip_cores=0)


def test_paper_example_core_counts():
    # Test bench 1 uses 4 cores per copy; 16 copies occupy 64 cores (Sec. 3.1).
    assert 16 * 4 == 64


def test_latency_and_throughput():
    # 1 kHz ticks: 1 spf + 1 layer = 2 ms latency.
    assert frames_to_latency(1, layer_count=1) == pytest.approx(0.002)
    assert frames_to_latency(13, layer_count=1) == pytest.approx(0.014)
    assert throughput(1) == pytest.approx(1000.0)
    assert throughput(4) == pytest.approx(250.0)
    with pytest.raises(ValueError):
        frames_to_latency(0)
    with pytest.raises(ValueError):
        frames_to_latency(1, layer_count=0)
    with pytest.raises(ValueError):
        throughput(0)


def test_speedup_matches_paper_convention():
    # Table 2(b): B2 at 2 spf matching N13 at 13 spf is a 6.5x speedup.
    assert speedup_between(13, 2) == pytest.approx(6.5)
    assert speedup_between(6, 1) == pytest.approx(6.0)
    with pytest.raises(ValueError):
        speedup_between(0, 1)
