"""Seeded golden-fixture regression tests: every backend diffs against
committed ground truth.

The fixture ``tests/goldens/chip_multicopy_goldens.npz`` holds, for one
fixed hand-built 3-copy, 2-layer network and one fixed binary spike volume:

* the multi-copy chip engine's per-copy class counts and per-core spike
  counters (deterministic and stochastic-synapse mode, the latter with
  pinned per-copy LFSR seeds and final register states);
* the vectorized engine's accumulated class-mean scores;
* the per-corelet reference loop's accumulated scores.

Every quantity is either an exact integer count or an exact small-rational
float (integer counts divided by ``n_k``: products and sums are exact in
float64 and IEEE division is correctly rounded), so the committed arrays
are platform- and BLAS-independent — any mismatch is *our* numerical
drift, and this test fails loudly instead of letting it slide.

Regenerate deliberately after an intentional semantics change::

    PYTHONPATH=src python -m pytest tests/test_golden_regression.py --regen-goldens
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.eval.engine import (
    VectorizedEvaluator,
    class_counts,
    class_merge_weights,
    forward_spikes_reference,
)
from repro.mapping.pipeline import (
    program_chip_multicopy,
    run_chip_inference_multicopy,
)

from test_chip_multicopy_equivalence import _STOCHASTIC, random_deployed_copies

GOLDEN_PATH = Path(__file__).parent / "goldens" / "chip_multicopy_goldens.npz"

#: bump when the fixture layout (not the numerics) changes shape.
_SCHEMA = 1

_SEED = 20260730
_COPIES = 3
_COPY_SEEDS = [101, 7321, 54321]


def _scenario():
    """The fixed model/seed the goldens are pinned on."""
    rng = np.random.default_rng(_SEED)
    copies = random_deployed_copies(
        rng, _COPIES, depth=2, fractional_probabilities=True
    )
    volumes = (
        rng.random((6, 4, copies[0].corelet_network.input_dim)) < 0.45
    ).astype(np.int8)
    return copies, volumes


def _chip_record(copies, volumes, stochastic: bool):
    neuron_config = _STOCHASTIC if stochastic else None
    chip, core_ids = program_chip_multicopy(copies, neuron_config=neuron_config)
    counts = run_chip_inference_multicopy(
        chip,
        copies,
        core_ids,
        volumes,
        copy_seeds=_COPY_SEEDS if stochastic else None,
    )
    order = [cid for layer in core_ids for cid in layer]
    counters = np.stack(
        [chip.core(k).multicopy_spike_counts for k in order], axis=1
    )
    states = np.array(
        [
            [chip.core(k).copy_prngs[c].state for k in order]
            for c in range(len(copies))
        ],
        dtype=np.int64,
    )
    return counts, counters, states


def _vectorized_scores(copies, volumes):
    evaluator = VectorizedEvaluator(copies)
    total = None
    for t in range(volumes.shape[1]):
        scores = evaluator.class_scores(volumes[:, t, :].astype(float))
        total = scores if total is None else total + scores
    return total


def _reference_scores(copies, volumes):
    network = copies[0].corelet_network
    indicator = class_merge_weights(network)
    n_k = class_counts(network)
    total = np.zeros(
        (len(copies), volumes.shape[0], network.num_classes), dtype=float
    )
    for index, copy in enumerate(copies):
        for t in range(volumes.shape[1]):
            spikes = forward_spikes_reference(copy, volumes[:, t, :].astype(float))
            total[index] += (spikes @ indicator) / n_k
    return total


def _compute_goldens():
    copies, volumes = _scenario()
    det_counts, det_counters, _ = _chip_record(copies, volumes, stochastic=False)
    sto_counts, sto_counters, sto_states = _chip_record(
        copies, volumes, stochastic=True
    )
    return {
        "schema": np.array(_SCHEMA),
        "chip_class_counts": det_counts,
        "chip_spike_counters": det_counters,
        "chip_stochastic_class_counts": sto_counts,
        "chip_stochastic_spike_counters": sto_counters,
        "chip_stochastic_lfsr_states": sto_states,
        "vectorized_scores": _vectorized_scores(copies, volumes),
        "reference_scores": _reference_scores(copies, volumes),
    }


def test_backends_match_committed_goldens(regen_goldens):
    computed = _compute_goldens()

    # Internal consistency before touching the fixture: the chip's integer
    # counts and the functional engines must already agree (counts == n_k *
    # class-mean scores), and the two functional engines must be identical.
    copies, _ = _scenario()
    n_k = class_counts(copies[0].corelet_network)
    assert np.array_equal(
        computed["vectorized_scores"], computed["reference_scores"]
    )
    assert np.array_equal(
        computed["chip_class_counts"],
        np.rint(computed["vectorized_scores"] * n_k).astype(np.int64),
    )
    assert computed["chip_class_counts"].sum() > 0
    assert computed["chip_stochastic_class_counts"].sum() > 0

    if regen_goldens:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(GOLDEN_PATH, **computed)
        pytest.skip(f"regenerated {GOLDEN_PATH.name}; commit the new fixture")

    assert GOLDEN_PATH.exists(), (
        f"missing golden fixture {GOLDEN_PATH}; run pytest with "
        "--regen-goldens once and commit the file"
    )
    with np.load(GOLDEN_PATH) as golden:
        assert int(golden["schema"]) == _SCHEMA
        for key, value in computed.items():
            stored = golden[key]
            assert stored.shape == value.shape, (
                f"golden {key!r} shape drifted: {stored.shape} -> {value.shape}"
            )
            assert np.array_equal(stored, value), (
                f"golden {key!r} drifted from the committed fixture; if the "
                "change is intentional, regenerate with --regen-goldens and "
                "commit"
            )


def test_goldens_are_committed():
    """The fixture must live in the repo (a fresh checkout must not skip)."""
    assert GOLDEN_PATH.exists()
