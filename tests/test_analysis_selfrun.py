"""The committed tree passes its own static analysis.

This is the test that turns replint's rules into *enforced* invariants:
a change that reintroduces module-state RNG, an implicit dtype, an
unguarded counter, or an unthreaded request field fails the suite (and the
CI static-analysis job) before review ever sees it.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.__main__ import main
from repro.analysis.runner import run_analysis

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The same selection the CI static-analysis job scans.
SCANNED_PATHS = ("src", "tests", "benchmarks")

PROJECT_RULES = {
    "CAP-EXHAUSTIVE",
    "DTYPE-EXPLICIT",
    "FROZEN-MUT",
    "LOCK-GUARD",
    "REQ-SYNC",
    "RNG-SEED",
}


def test_committed_tree_is_clean():
    paths = [p for p in SCANNED_PATHS if (REPO_ROOT / p).is_dir()]
    assert paths, f"none of {SCANNED_PATHS} exists under {REPO_ROOT}"
    report = run_analysis(REPO_ROOT, paths, cache_path=None)
    assert report.errors == [], "replint violations in the tree:\n" + "\n".join(
        f"  {f.location()}: {f.rule} {f.message}" for f in report.errors
    )
    assert report.exit_code == 0
    # Sanity: the run actually covered the tree and ran every project rule
    # (an empty selection or a checker import regression would otherwise
    # make this test pass vacuously).
    assert report.files_scanned > 100
    assert PROJECT_RULES <= set(report.rules)


def test_cli_selfrun_matches(capsys):
    paths = [p for p in SCANNED_PATHS if (REPO_ROOT / p).is_dir()]
    code = main(["--root", str(REPO_ROOT), "--no-cache", *paths])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "no violations" in out
