"""Tests for the weight penalties (Eq. 16-17) and their diagnostics."""

import numpy as np
import pytest

from repro.core.penalties import (
    BiasingPenalty,
    L1Penalty,
    L2Penalty,
    ProbabilitySpacePenalty,
    centroid_fraction,
    penalty_histogram,
    pole_fraction,
    zero_fraction,
)


def numeric_gradient(penalty, weights, eps=1e-6):
    grad = np.zeros_like(weights)
    flat = weights.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = penalty.penalty_value(weights)
        flat[i] = original - eps
        minus = penalty.penalty_value(weights)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def test_l1_value_and_gradient():
    penalty = L1Penalty()
    weights = np.array([[-2.0, 0.5], [1.5, 0.0]])
    assert penalty.penalty_value(weights) == 4.0
    assert np.array_equal(penalty.penalty_gradient(weights), np.sign(weights))


def test_l2_value_and_gradient():
    penalty = L2Penalty()
    weights = np.array([1.0, -2.0])
    assert penalty.penalty_value(weights) == 2.5
    assert np.array_equal(penalty.penalty_gradient(weights), weights)


def test_biasing_penalty_zero_at_poles_max_at_centroid():
    penalty = BiasingPenalty(centroid=0.5, half_width=0.5)
    assert penalty.poles == (0.0, 1.0)
    assert penalty.penalty_value(np.array([0.0])) == 0.0
    assert penalty.penalty_value(np.array([1.0])) == 0.0
    assert np.isclose(penalty.penalty_value(np.array([0.5])), 0.5)
    # Worst point has strictly larger penalty than any other point in [0, 1].
    values = [penalty.penalty_value(np.array([p])) for p in np.linspace(0, 1, 21)]
    assert np.argmax(values) == 10


def test_biasing_penalty_gradient_matches_numeric():
    penalty = BiasingPenalty()
    weights = np.array([0.1, 0.3, 0.45, 0.62, 0.9, 1.2, -0.2])
    analytic = penalty.penalty_gradient(weights)
    numeric = numeric_gradient(penalty, weights.copy())
    assert np.allclose(analytic, numeric, atol=1e-5)


def test_biasing_penalty_gradient_points_toward_nearest_pole():
    penalty = BiasingPenalty()
    # Below the centroid the gradient is positive-signed penalty pushing down
    # toward 0; above the centroid it pushes up toward 1.
    grad = penalty.penalty_gradient(np.array([0.2, 0.8]))
    assert grad[0] > 0  # subtracting the gradient moves 0.2 toward 0
    assert grad[1] < 0  # subtracting the gradient moves 0.8 toward 1


def test_biasing_penalty_custom_poles():
    penalty = BiasingPenalty(centroid=0.0, half_width=1.0)
    assert penalty.poles == (-1.0, 1.0)
    assert penalty.penalty_value(np.array([-1.0, 1.0])) == 0.0
    assert np.isclose(penalty.penalty_value(np.array([0.0])), 1.0)


def test_biasing_penalty_validation():
    with pytest.raises(ValueError):
        BiasingPenalty(half_width=0.0)


def test_regularizer_protocol_sums_over_params():
    penalty = L1Penalty()
    params = {"a": np.array([1.0, -1.0]), "b": np.array([2.0])}
    assert penalty.penalty(params) == 4.0
    grads = penalty.gradient(params)
    assert set(grads) == {"a", "b"}


def test_probability_space_penalty_chain_rule():
    inner = BiasingPenalty()
    penalty = ProbabilitySpacePenalty(inner, synaptic_value=2.0)
    weights = np.array([-1.0, 0.5, 1.8])
    # p = |w| / 2 -> [0.5, 0.25, 0.9]
    expected_value = inner.penalty_value(np.array([0.5, 0.25, 0.9]))
    assert np.isclose(penalty.penalty_value(weights), expected_value)
    numeric = numeric_gradient(penalty, weights.copy())
    assert np.allclose(penalty.penalty_gradient(weights), numeric, atol=1e-5)


def test_probability_space_penalty_validation():
    with pytest.raises(ValueError):
        ProbabilitySpacePenalty(L1Penalty(), synaptic_value=0.0)


def test_histogram_and_fractions():
    probabilities = np.array([0.0, 0.01, 0.02, 0.5, 0.51, 0.98, 1.0])
    counts, edges = penalty_histogram(probabilities, bins=10)
    assert counts.sum() == probabilities.size
    assert len(edges) == 11
    assert pole_fraction(probabilities, tolerance=0.05) == pytest.approx(5 / 7)
    assert centroid_fraction(probabilities, tolerance=0.05) == pytest.approx(2 / 7)
    assert zero_fraction(np.array([0.0, 1e-5, 0.2])) == pytest.approx(2 / 3)


def test_fraction_validation():
    with pytest.raises(ValueError):
        pole_fraction(np.array([]))
    with pytest.raises(ValueError):
        zero_fraction(np.array([]))
    with pytest.raises(ValueError):
        penalty_histogram(np.array([0.5]), bins=0)
