"""Tests for the synaptic-deviation analysis (Figure 4)."""

import pytest

from repro.core.biased import ProbabilityBiasedLearning
from repro.core.tea import TeaLearning
from repro.eval.deviation import deviation_summary_pair, model_deviation_report


@pytest.fixture(scope="module")
def model_pair(small_architecture, small_dataset):
    tea = TeaLearning(epochs=8, seed=0, batch_size=8).train(
        small_architecture, small_dataset
    )
    biased = ProbabilityBiasedLearning(
        epochs=8, seed=0, batch_size=8, penalty_weight=0.02
    ).train(small_architecture, small_dataset)
    return tea.model, biased.model


def test_deviation_map_shape_and_range(model_pair):
    tea_model, _ = model_pair
    report = model_deviation_report(tea_model, layer=0, core_index=0, rng=0)
    layer = tea_model.architecture.layers[0]
    assert report.deviation_map.shape == (
        len(layer.input_indices[0]),
        layer.neurons_per_core,
    )
    assert report.deviation_map.min() >= 0.0
    assert 0.0 <= report.zero_fraction <= 1.0
    assert 0.0 <= report.above_half_fraction <= 1.0
    assert report.max_deviation <= 1.0 + 1e-9


def test_biased_model_has_smaller_deviation(model_pair):
    tea_model, biased_model = model_pair
    tea_report, biased_report = deviation_summary_pair(tea_model, biased_model, rng=0)
    assert biased_report.zero_fraction > tea_report.zero_fraction
    assert biased_report.mean_deviation < tea_report.mean_deviation
    assert biased_report.above_half_fraction <= tea_report.above_half_fraction


def test_random_core_selection_and_bounds(model_pair):
    tea_model, _ = model_pair
    report = model_deviation_report(tea_model, layer=0, rng=1)
    assert report.deviation_map.size > 0
    with pytest.raises(IndexError):
        model_deviation_report(tea_model, layer=5)
    with pytest.raises(IndexError):
        model_deviation_report(tea_model, layer=0, core_index=99)


def test_deviation_zero_tolerance_counts_near_pole_probabilities(model_pair):
    tea_model, _ = model_pair
    strict = model_deviation_report(tea_model, layer=0, core_index=0, rng=0, zero_tolerance=0.0)
    loose = model_deviation_report(tea_model, layer=0, core_index=0, rng=0, zero_tolerance=0.2)
    assert loose.zero_fraction >= strict.zero_fraction
