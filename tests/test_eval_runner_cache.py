"""Persistent disk cache and multi-process sweeps of :class:`SweepRunner`.

Covers the serve-style workload gaps: score tensors persist across processes
through an on-disk ``.npz`` cache (atomic-rename writes), and the per-repeat
evaluation passes can fan out over a ``ProcessPoolExecutor`` without changing
a single bit of the results.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.eval.runner import DiskScoreCache, ScoreCache, SweepRunner


@pytest.fixture(scope="module")
def trained(tiny_context):
    model = tiny_context.result("tea").model
    dataset = tiny_context.evaluation_dataset()
    return model, dataset


def _runner(cache_dir=None):
    # A fresh in-memory cache per runner isolates what the disk layer serves.
    return SweepRunner(
        copy_levels=(1, 2),
        spf_levels=(1, 2),
        repeats=2,
        cache=ScoreCache(),
        cache_dir=cache_dir,
    )


def test_disk_cache_round_trip(tmp_path):
    cache = DiskScoreCache(str(tmp_path))
    key = ("fingerprint", 4, 2, 0, 3, "dataset")
    tensors = [np.arange(24.0).reshape(4, 2, 3, 1), np.ones((4, 2, 3, 1))]
    assert cache.get(key) is None
    cache.put(key, tensors)
    loaded = cache.get(key)
    assert loaded is not None
    for original, restored in zip(tensors, loaded):
        assert np.array_equal(original, restored)
    assert cache.hits == 1 and cache.misses == 1
    assert len(cache) == 1
    # No temporary files left behind by the atomic write.
    assert all(not name.startswith(".tmp-") for name in os.listdir(tmp_path))


def test_disk_cache_treats_corrupt_entry_as_miss(tmp_path):
    cache = DiskScoreCache(str(tmp_path))
    key = ("fingerprint", 2, 2, 0, 1, "dataset")
    cache.put(key, [np.ones((2, 2, 1, 1))])
    path = cache._path(key)
    with open(path, "wb") as handle:
        handle.write(b"torn write, not a zip file")
    assert cache.get(key) is None
    # Recomputing overwrites the corrupt entry and serving works again.
    cache.put(key, [np.ones((2, 2, 1, 1))])
    assert cache.get(key) is not None


def _fill_cache(cache, count, repeats=1, shape=(2, 2, 8, 4)):
    for index in range(count):
        cache.put(
            ("fp", 2, 2, index, repeats, "ds"),
            [np.full(shape, float(index)) for _ in range(repeats)],
        )


def test_disk_cache_prune_evicts_oldest_first(tmp_path):
    cache = DiskScoreCache(str(tmp_path))
    _fill_cache(cache, 4)
    paths = [cache._path(("fp", 2, 2, i, 1, "ds")) for i in range(4)]
    # Make the eviction order unambiguous regardless of write timing.
    for index, path in enumerate(paths):
        os.utime(path, (index, index))
    keep_bytes = os.path.getsize(paths[2]) + os.path.getsize(paths[3])
    drop_bytes = os.path.getsize(paths[0]) + os.path.getsize(paths[1])
    freed = cache.prune(max_bytes=keep_bytes)
    assert freed == drop_bytes
    assert not os.path.exists(paths[0]) and not os.path.exists(paths[1])
    assert os.path.exists(paths[2]) and os.path.exists(paths[3])
    assert cache.evictions == 2


def test_disk_cache_prune_keeps_newest_even_when_oversized(tmp_path):
    cache = DiskScoreCache(str(tmp_path))
    _fill_cache(cache, 2)
    paths = [cache._path(("fp", 2, 2, i, 1, "ds")) for i in range(2)]
    os.utime(paths[0], (1, 1))
    os.utime(paths[1], (2, 2))
    cache.prune(max_bytes=1)  # smaller than any single entry
    assert not os.path.exists(paths[0])
    assert os.path.exists(paths[1])  # the newest entry always survives
    assert len(cache) == 1


def test_disk_cache_max_bytes_enforced_on_put(tmp_path):
    cache = DiskScoreCache(str(tmp_path), max_bytes=1)
    _fill_cache(cache, 3)
    # Every write prunes back down to the newest entry.
    assert len(cache) == 1
    assert cache.get(("fp", 2, 2, 2, 1, "ds")) is not None


def test_disk_cache_get_refreshes_mtime_for_lru(tmp_path):
    cache = DiskScoreCache(str(tmp_path))
    _fill_cache(cache, 2)
    old = cache._path(("fp", 2, 2, 0, 1, "ds"))
    new = cache._path(("fp", 2, 2, 1, 1, "ds"))
    os.utime(old, (1, 1))
    os.utime(new, (2, 2))
    # Reading the older entry marks it recently used...
    assert cache.get(("fp", 2, 2, 0, 1, "ds")) is not None
    entry_size = os.path.getsize(old)
    cache.prune(max_bytes=entry_size)
    # ...so the other entry is the one evicted.
    assert os.path.exists(old) and not os.path.exists(new)


def test_disk_cache_rejects_nonpositive_max_bytes(tmp_path):
    with pytest.raises(ValueError):
        DiskScoreCache(str(tmp_path), max_bytes=0)


def test_sweep_runner_threads_cache_max_bytes(trained, tmp_path):
    model, dataset = trained
    runner = SweepRunner(
        copy_levels=(1,),
        spf_levels=(1,),
        repeats=1,
        cache=ScoreCache(),
        cache_dir=str(tmp_path),
        cache_max_bytes=1,
    )
    assert runner.disk_cache.max_bytes == 1
    runner.cumulative_scores(model, dataset, rng=0)
    runner.cumulative_scores(model, dataset, rng=1)
    # The bound keeps the directory at a single (the newest) entry.
    assert len(runner.disk_cache) == 1


def test_sweep_runner_serves_second_runner_from_disk(trained, tmp_path):
    model, dataset = trained
    first = _runner(cache_dir=str(tmp_path))
    tensors = first.cumulative_scores(model, dataset, rng=0)
    assert first.disk_cache.misses == 1 and len(first.disk_cache) == 1

    second = _runner(cache_dir=str(tmp_path))
    served = second.cumulative_scores(model, dataset, rng=0)
    assert second.disk_cache.hits == 1
    for a, b in zip(tensors, served):
        assert np.array_equal(a, b)

    # The disk entry also seeds the in-memory cache for subsequent calls.
    assert second.cache.hits == 0
    second.cumulative_scores(model, dataset, rng=0)
    assert second.cache.hits == 1


def test_memory_hit_backfills_disk_cache(trained, tmp_path):
    """A memory-cache hit still persists the entry when cache_dir is set."""
    model, dataset = trained
    shared = ScoreCache()
    warm = SweepRunner(
        copy_levels=(1, 2), spf_levels=(1, 2), repeats=2, cache=shared
    )
    tensors = warm.cumulative_scores(model, dataset, rng=0)
    persisting = SweepRunner(
        copy_levels=(1, 2),
        spf_levels=(1, 2),
        repeats=2,
        cache=shared,
        cache_dir=str(tmp_path),
    )
    served = persisting.cumulative_scores(model, dataset, rng=0)
    assert len(persisting.disk_cache) == 1
    for a, b in zip(tensors, served):
        assert np.array_equal(a, b)


def test_fingerprint_memo_freezes_hashed_arrays(trained):
    """After fingerprinting, in-place weight mutation raises loudly.

    The fingerprint is memoized by object identity; freezing the hashed
    arrays is what keeps that sound (a mutated model can never silently
    reuse its pre-mutation cache entries).
    """
    from repro.eval.runner import model_fingerprint

    model, _ = trained
    model_fingerprint(model)
    with pytest.raises(ValueError):
        model.block_weights[0][0][0, 0] = 123.0


def test_evaluation_view_tracks_max_samples(trained):
    model, dataset = trained
    runner = SweepRunner(
        copy_levels=(1,), spf_levels=(1,), repeats=1, cache=ScoreCache(),
        max_samples=20,
    )
    assert runner._evaluation_view(dataset).sample_count == 20
    runner.max_samples = 10
    assert runner._evaluation_view(dataset).sample_count == 10


def test_sweep_runner_disk_cache_ignores_generator_rng(trained, tmp_path):
    model, dataset = trained
    runner = _runner(cache_dir=str(tmp_path))
    runner.cumulative_scores(model, dataset, rng=np.random.default_rng(0))
    assert len(runner.disk_cache) == 0


def test_workers_bit_identical_to_serial(trained):
    model, dataset = trained
    serial = _runner().cumulative_scores(model, dataset, rng=7)
    parallel = _runner().cumulative_scores(model, dataset, rng=7, workers=2)
    assert len(serial) == len(parallel) == 2
    for a, b in zip(serial, parallel):
        assert np.array_equal(a, b)


def test_workers_run_produces_identical_sweep(trained):
    model, dataset = trained
    serial = _runner().run(model, dataset, rng=3, label="serial")
    parallel = _runner().run(model, dataset, rng=3, label="parallel", workers=2)
    assert np.array_equal(serial.mean_accuracy, parallel.mean_accuracy)
    assert np.array_equal(serial.std_accuracy, parallel.std_accuracy)


_SUBPROCESS_SCRIPT = """
import sys
import numpy as np
from repro.eval.runner import ScoreCache, SweepRunner
from repro.experiments.runner import ExperimentContext

cache_dir, out_path = sys.argv[1], sys.argv[2]
context = ExperimentContext(
    train_size=120, test_size=60, epochs=2, eval_samples=30, repeats=1, seed=0
)
runner = SweepRunner(
    copy_levels=(1, 2), spf_levels=(1, 2), repeats=1,
    cache=ScoreCache(), cache_dir=cache_dir,
)
tensors = runner.cumulative_scores(
    context.result("tea").model, context.evaluation_dataset(), rng=0
)
np.savez(out_path, scores=tensors[0])
print("HITS", runner.disk_cache.hits, "MISSES", runner.disk_cache.misses)
"""


def test_disk_cache_shared_across_fresh_processes(tmp_path):
    """Two fresh interpreter processes: identical tensors, second hits disk."""
    outputs = []
    for run in range(2):
        out_path = str(tmp_path / f"scores-{run}.npz")
        result = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SCRIPT, str(tmp_path / "cache"), out_path],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        outputs.append((result.stdout.strip().splitlines()[-1], out_path))
    assert outputs[0][0] == "HITS 0 MISSES 1"
    assert outputs[1][0] == "HITS 1 MISSES 0"
    with np.load(outputs[0][1]) as first, np.load(outputs[1][1]) as second:
        assert np.array_equal(first["scores"], second["scores"])
