"""Tests for activation functions, including the TrueNorth erf activation."""

import numpy as np
import pytest

from repro.nn.activations import (
    Identity,
    Relu,
    Sigmoid,
    Tanh,
    TrueNorthErf,
    get_activation,
)


def numeric_derivative(fn, x, eps=1e-6):
    return (fn(x + eps) - fn(x - eps)) / (2 * eps)


@pytest.mark.parametrize(
    "activation",
    [Identity(), Relu(), Sigmoid(), Tanh(), TrueNorthErf(sigma=1.0), TrueNorthErf(sigma=3.0)],
)
def test_backward_matches_numeric_derivative(activation):
    x = np.linspace(-3, 3, 31)
    x = x[np.abs(x) > 1e-3]  # avoid the ReLU kink
    analytic = activation.backward(x)
    numeric = numeric_derivative(activation.forward, x)
    assert np.allclose(analytic, numeric, atol=1e-4)


def test_truenorth_erf_range_and_midpoint():
    act = TrueNorthErf(sigma=2.0)
    y = act.forward(np.array([-100.0, 0.0, 100.0]))
    assert np.isclose(y[0], 0.0, atol=1e-6)
    assert np.isclose(y[1], 0.5)
    assert np.isclose(y[2], 1.0, atol=1e-6)


def test_truenorth_erf_is_monotone():
    act = TrueNorthErf(sigma=1.5)
    x = np.linspace(-5, 5, 101)
    y = act.forward(x)
    assert np.all(np.diff(y) > 0)


def test_truenorth_erf_sigma_controls_softness():
    sharp = TrueNorthErf(sigma=0.5).forward(np.array([1.0]))[0]
    soft = TrueNorthErf(sigma=5.0).forward(np.array([1.0]))[0]
    assert sharp > soft > 0.5


def test_truenorth_erf_matches_firing_probability_interpretation():
    # forward(x) should equal P(N(x, sigma^2) >= 0).
    from repro.core.variance import firing_probability

    act = TrueNorthErf(sigma=2.5)
    for mean in (-2.0, -0.5, 0.0, 1.0, 3.0):
        assert np.isclose(
            act.forward(np.array([mean]))[0], firing_probability(mean, 2.5), atol=1e-12
        )


def test_sigma_must_be_positive():
    with pytest.raises(ValueError):
        TrueNorthErf(sigma=0.0)


def test_registry_lookup():
    assert isinstance(get_activation("relu"), Relu)
    assert isinstance(get_activation("truenorth_erf", sigma=2.0), TrueNorthErf)
    with pytest.raises(KeyError):
        get_activation("swish")


def test_relu_zero_negative():
    relu = Relu()
    assert np.array_equal(relu.forward(np.array([-2.0, 0.0, 3.0])), [0.0, 0.0, 3.0])
