"""Board engine and backend: bit-identical to the single-chip engine.

The board subsystem's equivalence discipline, pinned at ``atol=0``:

* a 1x1 board with zero link delay replays ``run_chip_inference_multicopy``
  bit for bit — class counts, per-core spike counters, router
  delivered/hop counters, and (stochastic mode) the final per-copy LFSR
  register states;
* spreading whole copies over several chips changes *where* cores live but
  not a single count, and carries zero link traffic;
* splitting a copy across chips hands spikes off at chip edges through the
  mesh links; with deterministic (history-free) neurons the counts are
  invariant under any ``link_delay`` and any ``router_delay``, and the
  summed delivered counters across the board equal the single chip's
  (conservation: a spike crosses a link instead of vanishing);
* ``board.reset()`` drops run state but not programming — a rerun after a
  completed (or drained) run reproduces the first run exactly, link
  counters included;
* the ``board`` backend equals the ``chip`` backend on every request the
  chip can serve, at any worker count, and ``Session`` auto-routes
  ``link_delay`` requests and chip-overflowing copy budgets to it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import EvalRequest, Session, UnsupportedRequestError
from repro.api.backends import (
    BoardBackend,
    ChipBackend,
    create_backend,
    register_backend,
)
from repro.board import BoardConfig
from repro.mapping.pipeline import (
    board_spike_counters,
    program_board_multicopy,
    program_chip_multicopy,
    run_board_inference_multicopy,
    run_chip_inference_multicopy,
)
from repro.truenorth.config import ChipConfig

from test_chip_multicopy_equivalence import _STOCHASTIC, random_deployed_copies

_SETTINGS = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _identity_chip_config(core_count: int, copies: int) -> ChipConfig:
    """A chip grid holding ``copies`` stacked copies with the *same column
    count* as the single-chip engine's ceil-sqrt grid.

    Core positions depend only on the column count (``core_id // cols,
    core_id % cols``), so the first ``core_count`` cores sit exactly where
    ``_make_chip`` puts them — which is what makes the router hop counters
    comparable, not just the spike counts.
    """
    rows = int(np.ceil(np.sqrt(core_count))) or 1
    cols = max(int(np.ceil(core_count / rows)), 1)
    tall = int(np.ceil(copies * core_count / cols))
    return ChipConfig(grid_shape=(tall, cols))


def _chip_reference(copies, volumes, neuron_config, delay, seeds):
    chip, core_ids = program_chip_multicopy(
        copies, neuron_config=neuron_config, router_delay=delay
    )
    counts = run_chip_inference_multicopy(
        chip, copies, core_ids, volumes, copy_seeds=seeds
    )
    flat = [cid for layer in core_ids for cid in layer]
    counters = np.stack(
        [chip.core(cid).multicopy_spike_counts for cid in flat], axis=1
    )
    return chip, flat, counts, counters


# ----------------------------------------------------------------------
# pipeline level: 1x1 board identity
# ----------------------------------------------------------------------
@given(
    depth=st.integers(min_value=1, max_value=3),
    stochastic=st.booleans(),
    delay=st.integers(min_value=1, max_value=2),
    grouped=st.booleans(),
    seed=st.integers(min_value=0, max_value=100),
)
@_SETTINGS
def test_board_1x1_bit_identical_to_single_chip(
    depth, stochastic, delay, grouped, seed
):
    rng = np.random.default_rng(seed)
    n_copies = 2
    copies = random_deployed_copies(
        rng, n_copies, depth, fractional_probabilities=stochastic
    )
    network = copies[0].corelet_network
    neuron_config = _STOCHASTIC if stochastic else None
    copy_seeds = [int(s) for s in rng.integers(1, 2**16, size=n_copies)]
    shape = (
        (n_copies, 3, 2, network.input_dim)
        if grouped
        else (3, 2, network.input_dim)
    )
    volumes = (rng.random(shape) < 0.4).astype(np.int8)

    chip, flat, ref_counts, ref_counters = _chip_reference(
        copies, volumes, neuron_config, delay, copy_seeds
    )

    config = BoardConfig(
        grid_shape=(1, 1),
        chip_config=_identity_chip_config(network.core_count, n_copies),
        link_delay=0,
    )
    board, program = program_board_multicopy(
        copies, config, neuron_config=neuron_config, router_delay=delay
    )
    counts = run_board_inference_multicopy(
        board, copies, program, volumes, copy_seeds=copy_seeds
    )
    board_chip = board.chips[0]

    assert np.array_equal(ref_counts, counts)
    assert np.array_equal(
        ref_counters, board_spike_counters(board, copies, program)
    )
    assert board.fabric.spikes_carried == 0 and board.fabric.hop_count == 0
    assert board_chip.router.delivered_count == chip.router.delivered_count
    assert board_chip.router.hop_count == chip.router.hop_count
    if stochastic:
        for core_id in flat:
            assert [
                prng.state for prng in board_chip.core(core_id).copy_prngs
            ] == [prng.state for prng in chip.core(core_id).copy_prngs]


# ----------------------------------------------------------------------
# pipeline level: whole copies spread over chips — zero link traffic
# ----------------------------------------------------------------------
@given(
    depth=st.integers(min_value=1, max_value=3),
    stochastic=st.booleans(),
    seed=st.integers(min_value=0, max_value=100),
)
@_SETTINGS
def test_whole_copy_spread_is_invariant_and_traffic_free(depth, stochastic, seed):
    rng = np.random.default_rng(seed)
    n_copies = 3
    copies = random_deployed_copies(
        rng, n_copies, depth, fractional_probabilities=stochastic
    )
    network = copies[0].corelet_network
    neuron_config = _STOCHASTIC if stochastic else None
    copy_seeds = [int(s) for s in rng.integers(1, 2**16, size=n_copies)]
    volumes = (rng.random((3, 2, network.input_dim)) < 0.4).astype(np.int8)

    _, _, ref_counts, ref_counters = _chip_reference(
        copies, volumes, neuron_config, 1, copy_seeds
    )

    # One copy per chip, non-zero link delay: whole copies never touch it.
    config = BoardConfig(
        grid_shape=(2, 2),
        chip_config=ChipConfig(grid_shape=(1, network.core_count)),
        link_delay=3,
    )
    board, program = program_board_multicopy(
        copies, config, neuron_config=neuron_config
    )
    counts = run_board_inference_multicopy(
        board, copies, program, volumes, copy_seeds=copy_seeds
    )
    assert program.placement.occupied_chips() == n_copies
    assert np.array_equal(ref_counts, counts)
    assert np.array_equal(
        ref_counters, board_spike_counters(board, copies, program)
    )
    assert board.fabric.spikes_carried == 0


# ----------------------------------------------------------------------
# pipeline level: split copies hand off at chip edges
# ----------------------------------------------------------------------
@given(
    depth=st.integers(min_value=2, max_value=3),
    delay=st.integers(min_value=1, max_value=3),
    link_delay=st.integers(min_value=0, max_value=2),
    seed=st.integers(min_value=0, max_value=100),
)
@_SETTINGS
def test_split_copy_handoff_matches_single_chip(depth, delay, link_delay, seed):
    rng = np.random.default_rng(seed)
    n_copies = 2
    copies = random_deployed_copies(rng, n_copies, depth)
    network = copies[0].corelet_network
    volumes = (rng.random((3, 3, network.input_dim)) < 0.45).astype(np.int8)

    chip, _, ref_counts, ref_counters = _chip_reference(
        copies, volumes, None, delay, None
    )

    half = (network.core_count + 1) // 2
    config = BoardConfig(
        grid_shape=(2, 2), chip_config=ChipConfig(grid_shape=(1, half)),
        link_delay=link_delay,
    )
    board, program = program_board_multicopy(
        copies, config, router_delay=delay
    )
    counts = run_board_inference_multicopy(board, copies, program, volumes)

    assert program.placement.split_copies() == tuple(range(n_copies))
    stats = program.placement.mesh_statistics()
    assert stats["max_chip_distance"] >= 1
    # Deterministic history-free neurons: counts are invariant under any
    # link/router delay — the spikes arrive later but identical.
    assert np.array_equal(ref_counts, counts)
    assert np.array_equal(
        ref_counters, board_spike_counters(board, copies, program)
    )
    # Conservation: every on-chip delivery happens somewhere on the board.
    delivered = sum(c.router.delivered_count for c in board.chips)
    assert delivered == chip.router.delivered_count
    # Link traffic is real whenever some inter-layer spike fired, and its
    # hop accounting matches the placement's worst-distance bound.
    assert board.fabric.hop_count <= (
        board.fabric.spikes_carried * max(1, stats["max_chip_distance"])
    )
    assert board.fabric.spikes_carried == sum(board.fabric.pair_counts.values())


def test_board_reset_reproduces_the_run():
    rng = np.random.default_rng(7)
    copies = random_deployed_copies(rng, 2, 2)
    network = copies[0].corelet_network
    volumes = (rng.random((3, 3, network.input_dim)) < 0.45).astype(np.int8)
    half = (network.core_count + 1) // 2
    config = BoardConfig(
        grid_shape=(1, 4), chip_config=ChipConfig(grid_shape=(1, half)),
        link_delay=2,
    )
    board, program = program_board_multicopy(copies, config, router_delay=2)
    first = run_board_inference_multicopy(board, copies, program, volumes)
    first_fabric = (board.fabric.spikes_carried, board.fabric.hop_count)
    assert first_fabric[0] > 0

    # Reset mid-life: run state (in-flight spikes, tick counters, link
    # counters) drops, programming (crossbars, remote routes) survives.
    board.reset()
    assert not board.has_pending()
    assert board.fabric.spikes_carried == 0 and board.fabric.pair_counts == {}
    assert all(chip.batch_size is None for chip in board.chips)

    second = run_board_inference_multicopy(board, copies, program, volumes)
    assert np.array_equal(first, second)
    assert (board.fabric.spikes_carried, board.fabric.hop_count) == first_fabric


def test_reset_during_drain_discards_in_flight_spikes():
    # Interrupt a run mid-tick-loop: reset must clear pending link spikes
    # so a fresh run is not contaminated.
    rng = np.random.default_rng(11)
    copies = random_deployed_copies(rng, 1, 2)
    network = copies[0].corelet_network
    volumes = (rng.random((2, 3, network.input_dim)) < 0.6).astype(np.int8)
    half = (network.core_count + 1) // 2
    config = BoardConfig(
        grid_shape=(1, 2), chip_config=ChipConfig(grid_shape=(1, half)),
        link_delay=3,
    )
    board, program = program_board_multicopy(copies, config, router_delay=2)
    reference = run_board_inference_multicopy(board, copies, program, volumes)

    board.reset()
    # Start a second run by hand and abandon it while spikes are in flight.
    from repro.mapping.pipeline import INPUT_CHANNEL, _gather_input_volumes

    for chip_index in program.shard_chips:
        board.chips[chip_index].begin_batch(volumes.shape[0], copies=1)
    per_binding = _gather_input_volumes(network, volumes)
    inputs = {
        chip_index: {
            INPUT_CHANNEL: {
                binding: per_binding[corelet][:, 0, :]
                for binding, corelet in enumerate(
                    program.shard_inputs[chip_index]
                )
            }
        }
        for chip_index in program.shard_inputs
    }
    board.step_batch(inputs)
    board.reset()
    assert not board.has_pending()

    replay = run_board_inference_multicopy(board, copies, program, volumes)
    assert np.array_equal(reference, replay)


# ----------------------------------------------------------------------
# backend level
# ----------------------------------------------------------------------
def _request(model, dataset, **kwargs):
    kwargs.setdefault("copy_levels", (1, 2))
    kwargs.setdefault("spf_levels", (1, 2))
    kwargs.setdefault("repeats", 2)
    kwargs.setdefault("seed", 0)
    kwargs.setdefault("max_samples", 10)
    return EvalRequest(model=model, dataset=dataset, **kwargs)


@pytest.fixture(scope="module")
def model_and_dataset(tiny_context):
    return tiny_context.result("tea").model, tiny_context.evaluation_dataset()


def test_board_backend_matches_chip_backend(model_and_dataset):
    model, dataset = model_and_dataset
    request = _request(model, dataset, collect_spike_counters=True)
    chip_result = ChipBackend().evaluate(request)
    board_result = BoardBackend().evaluate(request)
    assert board_result.backend == "board"
    assert np.array_equal(chip_result.scores, board_result.scores)
    assert np.array_equal(
        chip_result.class_counts(), board_result.class_counts()
    )
    assert np.array_equal(chip_result.accuracy, board_result.accuracy)
    assert np.array_equal(
        chip_result.spike_counters, board_result.spike_counters
    )


def test_board_backend_matches_chip_backend_stochastic(model_and_dataset):
    model, dataset = model_and_dataset
    request = _request(
        model, dataset, stochastic_synapses=True, router_delay=2,
        spf_levels=(1,), max_samples=8,
    )
    chip_result = ChipBackend().evaluate(request)
    board_result = BoardBackend().evaluate(request)
    assert np.array_equal(
        chip_result.class_counts(), board_result.class_counts()
    )


def test_board_worker_sharding_is_bit_identical(model_and_dataset):
    model, dataset = model_and_dataset
    cores = model.architecture.cores_per_network
    # Half-copy chips force split copies, so workers shard real segments.
    small = ChipConfig(grid_shape=(1, max(1, (cores + 1) // 2)))
    request = _request(model, dataset, collect_spike_counters=True)
    monolithic = BoardBackend(chip_config=small).evaluate(request)
    sharded = BoardBackend(chip_config=small, workers=2).evaluate(request)
    assert np.array_equal(monolithic.scores, sharded.scores)
    assert np.array_equal(
        monolithic.spike_counters, sharded.spike_counters
    )


def test_link_delay_changes_nothing_for_history_free_copies(model_and_dataset):
    # The deployed tea model is deterministic and history-free, so mesh
    # latency shifts arrival ticks without changing any count.
    model, dataset = model_and_dataset
    cores = model.architecture.cores_per_network
    small = ChipConfig(grid_shape=(1, max(1, (cores + 1) // 2)))
    base = _request(model, dataset, spf_levels=(1,))
    delayed = _request(model, dataset, spf_levels=(1,), link_delay=2)
    ideal = BoardBackend(chip_config=small).evaluate(base)
    slow = BoardBackend(chip_config=small).evaluate(delayed)
    assert slow.backend == "board"
    assert np.array_equal(ideal.class_counts(), slow.class_counts())


def test_link_delay_is_gated_off_non_board_backends(model_and_dataset):
    model, dataset = model_and_dataset
    request = _request(model, dataset, link_delay=1)
    for name in ("chip", "vectorized", "reference"):
        with pytest.raises(UnsupportedRequestError, match="board"):
            create_backend(name).evaluate(request)


def test_session_routes_link_delay_to_board(model_and_dataset):
    model, dataset = model_and_dataset
    session = Session()
    request = _request(model, dataset, spf_levels=(1,), link_delay=0)
    assert session.select_backend(request) == "board"
    result = session.evaluate(request)
    assert result.backend == "board"


def test_session_routes_chip_overflow_to_board(model_and_dataset):
    model, dataset = model_and_dataset
    cores = model.architecture.cores_per_network
    # A chip the size of one copy: any duplication overflows it.
    register_backend(
        "chip", lambda **kw: ChipBackend(cores_per_chip=cores, **kw)
    )
    try:
        session = Session()
        request = _request(
            model, dataset, copy_levels=(1, 2), spf_levels=(1,),
            collect_spike_counters=True,
        )
        assert session.select_backend(request) == "board"
        result = session.evaluate(request)
        assert result.backend == "board"
        # The sweep completed with conservation intact: exact integer
        # counts recoverable and counters present for every copy level.
        assert result.class_counts().dtype == np.int64
        assert result.spike_counters.shape[:2] == (request.repeats, 2)
        # An explicit chip evaluation of the same request is refused.
        with pytest.raises(UnsupportedRequestError, match="board"):
            session.evaluate(request, backend="chip")
    finally:
        register_backend("chip", ChipBackend)


def test_requests_differing_in_link_delay_do_not_coalesce(model_and_dataset):
    model, dataset = model_and_dataset
    session = Session(backend="board")
    a = session.submit(_request(model, dataset, spf_levels=(1,), link_delay=0))
    b = session.submit(_request(model, dataset, spf_levels=(1,), link_delay=1))
    session.flush()
    assert session.stats.coalesced_requests == 0
    assert np.array_equal(
        a.result().class_counts(), b.result().class_counts()
    )
