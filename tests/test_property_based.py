"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.penalties import BiasingPenalty, L1Penalty, ProbabilitySpacePenalty
from repro.core.probability import probabilities_to_weights, weights_to_probabilities
from repro.core.variance import presynaptic_sum_statistics, synaptic_variance
from repro.encoding.population import PopulationEncoder
from repro.encoding.rate import RateEncoder
from repro.encoding.stochastic import StochasticEncoder
from repro.eval.comparison import label_points, match_accuracy_levels
from repro.mapping.blocks import stride_blocks
from repro.truenorth.prng import LfsrPrng

probability_arrays = hnp.arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 8), st.integers(1, 8)),
    elements=st.floats(0.0, 1.0),
)

weight_arrays = hnp.arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 8), st.integers(1, 8)),
    elements=st.floats(-1.0, 1.0),
)


@given(weight_arrays, st.floats(0.5, 4.0))
@settings(max_examples=60, deadline=None)
def test_probability_mapping_roundtrip_preserves_expectation(weights, value):
    """Eq. (7): p * c reconstructs any representable weight exactly."""
    scaled = weights * value  # guaranteed within [-c, +c]
    mapping = weights_to_probabilities(scaled, synaptic_value=value)
    assert np.all(mapping.probabilities >= 0.0)
    assert np.all(mapping.probabilities <= 1.0)
    reconstructed = probabilities_to_weights(mapping.probabilities, mapping.synaptic_values)
    assert np.allclose(reconstructed, scaled, atol=1e-9)


@given(probability_arrays, st.floats(0.5, 3.0))
@settings(max_examples=60, deadline=None)
def test_synaptic_variance_bounds(probabilities, value):
    """Eq. (15): 0 <= c^2 p (1-p) <= c^2 / 4, zero exactly at the poles."""
    values = np.full_like(probabilities, value)
    variance = synaptic_variance(probabilities, values)
    assert np.all(variance >= 0.0)
    assert np.all(variance <= value**2 / 4.0 + 1e-12)
    poles = (probabilities == 0.0) | (probabilities == 1.0)
    assert np.all(variance[poles] == 0.0)


@given(
    hnp.arrays(dtype=float, shape=st.integers(1, 16), elements=st.floats(0.0, 1.0)),
    hnp.arrays(dtype=float, shape=st.integers(1, 16), elements=st.floats(0.0, 1.0)),
)
@settings(max_examples=60, deadline=None)
def test_presynaptic_variance_never_negative(p, x):
    n = min(p.size, x.size)
    values = np.ones(n)
    stats = presynaptic_sum_statistics(p[:n], values, x[:n])
    assert stats.variance >= -1e-12
    assert abs(stats.mean) <= n + 1e-9


@given(hnp.arrays(dtype=float, shape=st.integers(1, 30), elements=st.floats(-2.0, 2.0)))
@settings(max_examples=60, deadline=None)
def test_biasing_penalty_nonnegative_and_zero_only_at_poles(weights):
    penalty = BiasingPenalty(centroid=0.5, half_width=0.5)
    value = penalty.penalty_value(weights)
    assert value >= 0.0
    at_poles = np.all(np.isclose(weights, 0.0) | np.isclose(weights, 1.0))
    if value < 1e-12:
        assert at_poles


@given(
    hnp.arrays(dtype=float, shape=st.integers(1, 20), elements=st.floats(-1.0, 1.0)),
    st.floats(0.5, 3.0),
)
@settings(max_examples=60, deadline=None)
def test_probability_space_penalty_invariant_to_synaptic_rescaling(weights, value):
    """Scaling weights and c together leaves the probability-space penalty unchanged."""
    penalty = ProbabilitySpacePenalty(L1Penalty(), synaptic_value=1.0)
    scaled_penalty = ProbabilitySpacePenalty(L1Penalty(), synaptic_value=value)
    assert np.isclose(
        penalty.penalty_value(weights), scaled_penalty.penalty_value(weights * value)
    )


@given(
    hnp.arrays(dtype=float, shape=st.tuples(st.integers(1, 6), st.integers(1, 12)),
               elements=st.floats(0.0, 1.0)),
    st.integers(1, 6),
)
@settings(max_examples=40, deadline=None)
def test_stochastic_encoder_rate_matches_expectation(values, spf):
    frames = StochasticEncoder(spf).encode(values, rng=0)
    assert frames.shape == (spf,) + values.shape
    assert frames.min() >= 0 and frames.max() <= 1
    # Values of exactly 0 / 1 are deterministic.
    assert np.all(frames[:, values == 0.0] == 0)
    assert np.all(frames[:, values == 1.0] == 1)


@given(
    hnp.arrays(dtype=float, shape=st.tuples(st.integers(1, 5), st.integers(1, 10)),
               elements=st.floats(0.0, 1.0)),
    st.integers(1, 12),
)
@settings(max_examples=40, deadline=None)
def test_rate_encoder_counts_equal_rounded_value(values, window):
    encoder = RateEncoder(window)
    frames = encoder.encode(values)
    counts = frames.sum(axis=0)
    assert np.array_equal(counts, np.rint(values * window).astype(int))
    assert np.allclose(encoder.decode(frames) * window, counts)


@given(
    hnp.arrays(dtype=float, shape=st.tuples(st.integers(1, 5), st.integers(1, 8)),
               elements=st.floats(0.0, 1.0)),
    st.integers(1, 8),
)
@settings(max_examples=40, deadline=None)
def test_population_encoder_roundtrip_quantization(values, population):
    encoder = PopulationEncoder(population)
    bits = encoder.encode(values)
    decoded = encoder.decode(bits, feature_count=values.shape[1])
    assert np.all(np.abs(decoded - values) <= 0.5 / population + 1e-9)


@given(st.integers(1, 2**16 - 1), st.integers(16, 200))
@settings(max_examples=40, deadline=None)
def test_lfsr_period_does_not_collapse(seed, steps):
    prng = LfsrPrng(seed)
    states = {prng.state}
    for _ in range(steps):
        prng.next_bit()
        states.add(prng.state)
    # A maximal-length 16-bit LFSR cannot revisit a state within 200 steps.
    assert len(states) == steps + 1


@given(
    st.integers(17, 40),
    st.integers(1, 16),
)
@settings(max_examples=40, deadline=None)
def test_stride_blocks_cover_all_pixels(size, stride):
    partition = stride_blocks((size, size), (16, 16), stride)
    assert partition.coverage().min() >= 1
    for block in partition.blocks:
        assert len(block) == 256


@given(
    st.lists(st.floats(0.3, 0.99), min_size=1, max_size=8),
    st.lists(st.floats(0.3, 0.99), min_size=1, max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_matched_comparison_never_picks_lower_accuracy(base_acc, our_acc):
    baseline = label_points(
        list(range(1, len(base_acc) + 1)), base_acc, [4 * i for i in range(1, len(base_acc) + 1)], "N"
    )
    ours = label_points(
        list(range(1, len(our_acc) + 1)), our_acc, [4 * i for i in range(1, len(our_acc) + 1)], "B"
    )
    for row in match_accuracy_levels(baseline, ours):
        if row.ours is not None:
            assert row.ours.accuracy >= row.baseline.accuracy
            assert row.saved_fraction <= 1.0
