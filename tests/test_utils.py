"""Tests for the utility modules (rng, tables, serialization, logging)."""

import logging

import numpy as np
import pytest

from repro.utils.logging import configure_logging, get_logger
from repro.utils.rng import SeedSequenceFactory, new_rng, spawn_rngs
from repro.utils.serialization import load_json, load_npz, save_json, save_npz
from repro.utils.tables import format_table


def test_new_rng_accepts_all_forms():
    generator = np.random.default_rng(0)
    assert new_rng(generator) is generator
    assert isinstance(new_rng(5), np.random.Generator)
    assert isinstance(new_rng(None), np.random.Generator)
    # Same integer seed -> same stream.
    assert new_rng(7).integers(0, 100, 5).tolist() == new_rng(7).integers(0, 100, 5).tolist()


def test_spawn_rngs_independent_and_deterministic():
    streams_a = spawn_rngs(0, 3)
    streams_b = spawn_rngs(0, 3)
    draws_a = [r.integers(0, 1000, 4).tolist() for r in streams_a]
    draws_b = [r.integers(0, 1000, 4).tolist() for r in streams_b]
    assert draws_a == draws_b
    assert draws_a[0] != draws_a[1]
    assert spawn_rngs(0, 0) == []
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_spawn_rngs_from_generator():
    parent = np.random.default_rng(3)
    children = spawn_rngs(parent, 2)
    assert len(children) == 2
    assert children[0].integers(0, 10) != children[1].integers(0, 10) or True


def test_seed_sequence_factory_streams_are_stable():
    factory_a = SeedSequenceFactory(42)
    factory_b = SeedSequenceFactory(42)
    assert (
        factory_a.rng("weights").integers(0, 1000, 3).tolist()
        == factory_b.rng("weights").integers(0, 1000, 3).tolist()
    )
    # Different names give different streams; repeated calls advance the stream.
    assert (
        factory_a.rng("spikes").integers(0, 1000, 3).tolist()
        != factory_b.rng("weights").integers(0, 1000, 3).tolist()
    )
    factory_a.reset()
    assert factory_a.root_seed == 42


def test_format_table_alignment_and_validation():
    table = format_table(
        ["name", "value"], [("alpha", 1.23456), ("b", 7)], title="demo"
    )
    lines = table.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert "1.2346" in table  # floats rendered with 4 decimals
    with pytest.raises(ValueError):
        format_table(["a"], [(1, 2)])


def test_json_roundtrip_with_numpy_types(tmp_path):
    payload = {
        "array": np.arange(3),
        "float": np.float64(1.5),
        "int": np.int32(7),
        "flag": np.bool_(True),
        "nested": {"values": [np.float32(0.25)]},
    }
    path = save_json(tmp_path / "sub" / "report.json", payload)
    loaded = load_json(path)
    assert loaded["array"] == [0, 1, 2]
    assert loaded["float"] == 1.5
    assert loaded["int"] == 7
    assert loaded["flag"] is True
    assert loaded["nested"]["values"] == [0.25]


def test_npz_roundtrip(tmp_path):
    arrays = {"a": np.random.default_rng(0).random((4, 4)), "b": np.arange(5)}
    path = save_npz(tmp_path / "arrays.npz", arrays)
    loaded = load_npz(path)
    assert set(loaded) == {"a", "b"}
    assert np.array_equal(loaded["a"], arrays["a"])


def test_logging_configuration_idempotent():
    logger = configure_logging(level=logging.DEBUG)
    handler_count = len(logger.handlers)
    configure_logging(level=logging.INFO)
    assert len(logger.handlers) == handler_count
    assert get_logger().name == "repro"
    assert get_logger("repro.custom").name == "repro.custom"
