"""Request journal: fingerprints, replay, crash consistency."""

import json
import os

import pytest

from repro.serve.codec import decode_request, wire_payload
from repro.serve.journal import RequestJournal, request_fingerprint


def payload(**overrides):
    base = {"model": "tea", "copy_levels": [1, 2], "seed": 7}
    base.update(overrides)
    return wire_payload(decode_request(base))


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_is_key_order_independent():
    one = {"model": "tea", "seed": 7}
    other = {"seed": 7, "model": "tea"}
    assert request_fingerprint(one) == request_fingerprint(other)


def test_normalized_payloads_fingerprint_identically():
    # A client that spells out every default and one that omits them all
    # journal to the same fingerprint after wire normalization.
    sparse = wire_payload(decode_request({"model": "tea", "seed": 7}))
    spelled = wire_payload(
        decode_request(
            {
                "model": "tea",
                "dataset": "test",
                "seed": 7,
                "repeats": 1,
                "copy_levels": [1],
                "spf_levels": [1],
                "encoder": "stochastic",
            }
        )
    )
    assert request_fingerprint(sparse) == request_fingerprint(spelled)


def test_different_requests_fingerprint_differently():
    assert request_fingerprint(payload(seed=7)) != request_fingerprint(
        payload(seed=8)
    )


# ----------------------------------------------------------------------
# record + replay
# ----------------------------------------------------------------------
def test_record_and_replay_round_trip(tmp_path):
    journal = RequestJournal(str(tmp_path / "requests.jsonl"))
    first = payload(seed=1)
    second = payload(seed=2)
    journal.record(first)
    journal.record(second)
    replayed = journal.replay()
    assert replayed == [first, second]
    # Replayed payloads decode to the same wire requests that were served.
    assert decode_request(replayed[0]) == decode_request(first)


def test_replay_deduplicates_a_repeated_burst(tmp_path):
    journal = RequestJournal(str(tmp_path / "requests.jsonl"))
    burst = payload(seed=3)
    for _ in range(25):
        journal.record(burst)
    journal.record(payload(seed=4))
    assert len(journal.replay()) == 2
    assert len(journal) == 2
    assert journal.snapshot()["recorded"] == 26


def test_replay_of_never_written_journal_is_empty(tmp_path):
    # Constructing a journal does not create the file; replay is empty.
    journal = RequestJournal(str(tmp_path / "never-written.jsonl"))
    assert journal.replay() == []
    assert journal.snapshot()["size_bytes"] is None


def test_replay_survives_a_torn_final_line(tmp_path):
    path = tmp_path / "requests.jsonl"
    journal = RequestJournal(str(path))
    journal.record(payload(seed=5))
    journal.record(payload(seed=6))
    # Simulate a writer killed mid-append: truncate the last line in half.
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) - len(raw.splitlines(True)[-1]) // 2 - 1])
    replayed = RequestJournal(str(path)).replay()
    assert replayed == [payload(seed=5)]


def test_replay_skips_garbage_lines_without_failing(tmp_path):
    path = tmp_path / "requests.jsonl"
    journal = RequestJournal(str(path))
    journal.record(payload(seed=9))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("not json at all\n")
        handle.write(json.dumps(["wrong", "shape"]) + "\n")
        handle.write(json.dumps({"fingerprint": 42, "request": {}}) + "\n")
    assert RequestJournal(str(path)).replay() == [payload(seed=9)]


def test_records_survive_without_any_close_call(tmp_path):
    # Crash consistency: every record is flushed line-at-a-time, so a
    # journal abandoned without shutdown is fully readable by a new
    # instance (the kill-and-restart soak relies on exactly this).
    path = str(tmp_path / "requests.jsonl")
    writer = RequestJournal(path)
    writer.record(payload(seed=10))
    writer.record(payload(seed=11))
    del writer
    assert len(RequestJournal(path).replay()) == 2


def test_journal_creates_parent_directories(tmp_path):
    path = tmp_path / "nested" / "deeper" / "requests.jsonl"
    journal = RequestJournal(str(path))
    journal.record(payload(seed=12))
    assert os.path.exists(path)


def test_snapshot_reports_path_and_size(tmp_path):
    path = str(tmp_path / "requests.jsonl")
    journal = RequestJournal(path)
    journal.record(payload(seed=13))
    snapshot = journal.snapshot()
    assert snapshot["path"] == path
    assert snapshot["recorded"] == 1
    assert snapshot["size_bytes"] > 0


def test_wall_clock_is_injectable_and_recorded(tmp_path):
    journal = RequestJournal(
        str(tmp_path / "requests.jsonl"), wall_clock=lambda: 1234.5
    )
    journal.record(payload(seed=14))
    with open(journal.path, encoding="utf-8") as handle:
        record = json.loads(handle.readline())
    assert record["recorded_at"] == pytest.approx(1234.5)


# ----------------------------------------------------------------------
# integrity: stored fingerprints are recomputed, never trusted
# ----------------------------------------------------------------------
def test_replay_skips_fingerprint_mismatched_lines(tmp_path):
    """A parseable line whose fingerprint does not match its own request
    payload (bit rot, tampering, a partial overwrite that still decodes)
    is skipped exactly like a torn line — it must never poison the dedup
    map or warm a cache entry under the wrong fingerprint."""
    path = tmp_path / "requests.jsonl"
    journal = RequestJournal(str(path))
    good = payload(seed=20)
    journal.record(good)
    # A valid-shape record claiming seed=21's fingerprint over seed=22's
    # request payload: internally inconsistent, so it must not replay.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                {
                    "fingerprint": request_fingerprint(payload(seed=21)),
                    "recorded_at": 0.0,
                    "request": payload(seed=22),
                }
            )
            + "\n"
        )
    fresh = RequestJournal(str(path))
    assert fresh.replay() == [good]
    assert len(fresh) == 1


def test_tampered_request_payload_does_not_replay_under_old_fingerprint(
    tmp_path,
):
    path = tmp_path / "requests.jsonl"
    journal = RequestJournal(str(path))
    journal.record(payload(seed=23))
    # Edit the request payload on disk but keep the stored fingerprint.
    lines = path.read_text(encoding="utf-8").splitlines()
    record = json.loads(lines[0])
    record["request"]["seed"] = 24
    path.write_text(json.dumps(record) + "\n", encoding="utf-8")
    assert RequestJournal(str(path)).replay() == []


# ----------------------------------------------------------------------
# bounded growth: boot-time compaction + O(1) len
# ----------------------------------------------------------------------
def test_compact_rewrites_down_to_unique_fingerprints(tmp_path):
    path = tmp_path / "requests.jsonl"
    journal = RequestJournal(str(path))
    burst = payload(seed=30)
    for _ in range(40):
        journal.record(burst)
    journal.record(payload(seed=31))
    size_before = os.stat(path).st_size
    dropped = journal.compact()
    assert dropped == 39
    assert os.stat(path).st_size < size_before
    # The compacted file replays the same unique set, oldest first.
    assert journal.replay() == [burst, payload(seed=31)]
    assert len(journal) == 2


def test_compact_keeps_the_oldest_record_per_fingerprint(tmp_path):
    clock_values = iter([100.0, 200.0, 300.0])
    path = tmp_path / "requests.jsonl"
    journal = RequestJournal(str(path), wall_clock=lambda: next(clock_values))
    repeated = payload(seed=32)
    journal.record(repeated)
    journal.record(repeated)
    journal.record(repeated)
    journal.compact()
    with open(path, encoding="utf-8") as handle:
        records = [json.loads(line) for line in handle]
    assert len(records) == 1
    assert records[0]["recorded_at"] == pytest.approx(100.0)


def test_compact_drops_garbage_and_mismatched_lines(tmp_path):
    path = tmp_path / "requests.jsonl"
    journal = RequestJournal(str(path))
    journal.record(payload(seed=33))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("torn gar")
    assert journal.compact() == 1
    # Every surviving line is a valid, self-consistent record.
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            assert (
                request_fingerprint(record["request"]) == record["fingerprint"]
            )


def test_compact_without_duplicates_is_a_no_op(tmp_path):
    path = tmp_path / "requests.jsonl"
    journal = RequestJournal(str(path))
    journal.record(payload(seed=34))
    journal.record(payload(seed=35))
    content_before = path.read_text(encoding="utf-8")
    assert journal.compact() == 0
    assert path.read_text(encoding="utf-8") == content_before


def test_recording_continues_after_compaction(tmp_path):
    # compact() swaps the file out from under the persistent append
    # handle; the next record must reopen and land in the new file.
    path = tmp_path / "requests.jsonl"
    journal = RequestJournal(str(path))
    for _ in range(3):
        journal.record(payload(seed=36))
    assert journal.compact() == 2
    journal.record(payload(seed=37))
    assert len(journal) == 2
    assert len(RequestJournal(str(path)).replay()) == 2


def test_len_is_served_from_the_index_not_the_file(tmp_path):
    """len() must not re-read the journal per call: once populated, the
    in-memory index answers even after the file vanishes from disk."""
    path = tmp_path / "requests.jsonl"
    journal = RequestJournal(str(path))
    journal.record(payload(seed=38))
    assert len(journal) == 1  # populates the index (one read, at most)
    journal.close()
    os.remove(path)
    assert len(journal) == 1  # no re-read: the file is gone
    assert journal.snapshot()["unique_fingerprints"] == 1


def test_close_is_idempotent_and_reopens_on_next_record(tmp_path):
    path = tmp_path / "requests.jsonl"
    journal = RequestJournal(str(path))
    journal.record(payload(seed=39))
    journal.close()
    journal.close()
    journal.record(payload(seed=40))
    assert len(RequestJournal(str(path)).replay()) == 2
