"""Request journal: fingerprints, replay, crash consistency."""

import json
import os

import pytest

from repro.serve.codec import decode_request, wire_payload
from repro.serve.journal import RequestJournal, request_fingerprint


def payload(**overrides):
    base = {"model": "tea", "copy_levels": [1, 2], "seed": 7}
    base.update(overrides)
    return wire_payload(decode_request(base))


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_is_key_order_independent():
    one = {"model": "tea", "seed": 7}
    other = {"seed": 7, "model": "tea"}
    assert request_fingerprint(one) == request_fingerprint(other)


def test_normalized_payloads_fingerprint_identically():
    # A client that spells out every default and one that omits them all
    # journal to the same fingerprint after wire normalization.
    sparse = wire_payload(decode_request({"model": "tea", "seed": 7}))
    spelled = wire_payload(
        decode_request(
            {
                "model": "tea",
                "dataset": "test",
                "seed": 7,
                "repeats": 1,
                "copy_levels": [1],
                "spf_levels": [1],
                "encoder": "stochastic",
            }
        )
    )
    assert request_fingerprint(sparse) == request_fingerprint(spelled)


def test_different_requests_fingerprint_differently():
    assert request_fingerprint(payload(seed=7)) != request_fingerprint(
        payload(seed=8)
    )


# ----------------------------------------------------------------------
# record + replay
# ----------------------------------------------------------------------
def test_record_and_replay_round_trip(tmp_path):
    journal = RequestJournal(str(tmp_path / "requests.jsonl"))
    first = payload(seed=1)
    second = payload(seed=2)
    journal.record(first)
    journal.record(second)
    replayed = journal.replay()
    assert replayed == [first, second]
    # Replayed payloads decode to the same wire requests that were served.
    assert decode_request(replayed[0]) == decode_request(first)


def test_replay_deduplicates_a_repeated_burst(tmp_path):
    journal = RequestJournal(str(tmp_path / "requests.jsonl"))
    burst = payload(seed=3)
    for _ in range(25):
        journal.record(burst)
    journal.record(payload(seed=4))
    assert len(journal.replay()) == 2
    assert len(journal) == 2
    assert journal.snapshot()["recorded"] == 26


def test_replay_of_never_written_journal_is_empty(tmp_path):
    # Constructing a journal does not create the file; replay is empty.
    journal = RequestJournal(str(tmp_path / "never-written.jsonl"))
    assert journal.replay() == []
    assert journal.snapshot()["size_bytes"] is None


def test_replay_survives_a_torn_final_line(tmp_path):
    path = tmp_path / "requests.jsonl"
    journal = RequestJournal(str(path))
    journal.record(payload(seed=5))
    journal.record(payload(seed=6))
    # Simulate a writer killed mid-append: truncate the last line in half.
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) - len(raw.splitlines(True)[-1]) // 2 - 1])
    replayed = RequestJournal(str(path)).replay()
    assert replayed == [payload(seed=5)]


def test_replay_skips_garbage_lines_without_failing(tmp_path):
    path = tmp_path / "requests.jsonl"
    journal = RequestJournal(str(path))
    journal.record(payload(seed=9))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("not json at all\n")
        handle.write(json.dumps(["wrong", "shape"]) + "\n")
        handle.write(json.dumps({"fingerprint": 42, "request": {}}) + "\n")
    assert RequestJournal(str(path)).replay() == [payload(seed=9)]


def test_records_survive_without_any_close_call(tmp_path):
    # Crash consistency: every record is flushed line-at-a-time, so a
    # journal abandoned without shutdown is fully readable by a new
    # instance (the kill-and-restart soak relies on exactly this).
    path = str(tmp_path / "requests.jsonl")
    writer = RequestJournal(path)
    writer.record(payload(seed=10))
    writer.record(payload(seed=11))
    del writer
    assert len(RequestJournal(path).replay()) == 2


def test_journal_creates_parent_directories(tmp_path):
    path = tmp_path / "nested" / "deeper" / "requests.jsonl"
    journal = RequestJournal(str(path))
    journal.record(payload(seed=12))
    assert os.path.exists(path)


def test_snapshot_reports_path_and_size(tmp_path):
    path = str(tmp_path / "requests.jsonl")
    journal = RequestJournal(path)
    journal.record(payload(seed=13))
    snapshot = journal.snapshot()
    assert snapshot["path"] == path
    assert snapshot["recorded"] == 1
    assert snapshot["size_bytes"] > 0


def test_wall_clock_is_injectable_and_recorded(tmp_path):
    journal = RequestJournal(
        str(tmp_path / "requests.jsonl"), wall_clock=lambda: 1234.5
    )
    journal.record(payload(seed=14))
    with open(journal.path, encoding="utf-8") as handle:
        record = json.loads(handle.readline())
    assert record["recorded_at"] == pytest.approx(1234.5)
