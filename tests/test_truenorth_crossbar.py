"""Tests for the synaptic crossbar."""

import numpy as np
import pytest

from repro.truenorth.crossbar import SynapticCrossbar
from repro.truenorth.prng import LfsrPrng


def make_crossbar(axons=8, neurons=6, table=(1, -1, 2, -2)):
    return SynapticCrossbar(axons=axons, neurons=neurons, weight_table=table)


def test_effective_weights_use_axon_types_and_tables():
    crossbar = make_crossbar()
    connectivity = np.zeros((8, 6), dtype=bool)
    connectivity[0, 0] = True
    connectivity[1, 1] = True
    crossbar.set_connectivity(connectivity)
    crossbar.set_axon_types([0, 1, 0, 0, 0, 0, 0, 0])
    weights = crossbar.effective_weights()
    assert weights[0, 0] == 1  # type 0 -> +1
    assert weights[1, 1] == -1  # type 1 -> -1
    assert weights.sum() == 0  # nothing else connected


def test_per_neuron_weight_table_override():
    crossbar = make_crossbar()
    connectivity = np.ones((8, 6), dtype=bool)
    crossbar.set_connectivity(connectivity)
    crossbar.set_neuron_weight_table(2, (5, -5, 0, 0))
    weights = crossbar.effective_weights()
    assert np.all(weights[:, 2] == 5)  # all axons default to type 0
    assert np.all(weights[:, 0] == 1)


def test_integrate_deterministic():
    crossbar = make_crossbar()
    connectivity = np.zeros((8, 6), dtype=bool)
    connectivity[:4, 0] = True
    crossbar.set_connectivity(connectivity)
    spikes = np.array([1, 1, 0, 1, 0, 0, 0, 0])
    result = crossbar.integrate(spikes)
    assert result[0] == 3  # three active connected axons at weight +1
    assert np.all(result[1:] == 0)


def test_integrate_stochastic_requires_prng():
    crossbar = make_crossbar()
    crossbar.set_probabilities(np.full((8, 6), 0.5))
    with pytest.raises(ValueError):
        crossbar.integrate(np.ones(8), stochastic=True)


def test_integrate_stochastic_rate():
    crossbar = make_crossbar(axons=64, neurons=4)
    crossbar.set_probabilities(np.full((64, 4), 0.5))
    prng = LfsrPrng(seed=3)
    totals = np.zeros(4)
    repeats = 50
    for _ in range(repeats):
        totals += crossbar.integrate(np.ones(64), prng=prng, stochastic=True)
    mean = totals / repeats
    # Expected value is 64 * 0.5 = 32 per neuron.
    assert np.all(np.abs(mean - 32) < 6)


def test_signed_weight_mode_overrides_tables():
    crossbar = make_crossbar()
    signed = np.zeros((8, 6), dtype=int)
    signed[0, 0] = 3
    signed[1, 0] = -2
    crossbar.set_signed_weights(signed)
    assert crossbar.connectivity[0, 0] and crossbar.connectivity[1, 0]
    weights = crossbar.effective_weights()
    assert weights[0, 0] == 3 and weights[1, 0] == -2
    result = crossbar.integrate(np.array([1, 1, 0, 0, 0, 0, 0, 0]))
    assert result[0] == 1  # 3 - 2


def test_shape_validation():
    crossbar = make_crossbar()
    with pytest.raises(ValueError):
        crossbar.set_connectivity(np.zeros((4, 6), dtype=bool))
    with pytest.raises(ValueError):
        crossbar.set_probabilities(np.full((8, 6), 1.5))
    with pytest.raises(ValueError):
        crossbar.set_axon_types([0] * 7)
    with pytest.raises(ValueError):
        crossbar.integrate(np.ones(7))
    with pytest.raises(IndexError):
        crossbar.set_neuron_weight_table(10, (1, 1, 1, 1))


def test_crossbar_size_limits():
    with pytest.raises(ValueError):
        SynapticCrossbar(axons=0)
    with pytest.raises(ValueError):
        SynapticCrossbar(axons=257)
    with pytest.raises(ValueError):
        SynapticCrossbar(neurons=300)
