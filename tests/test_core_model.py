"""Tests for NetworkArchitecture and TrueNorthModel."""

import numpy as np
import pytest

from repro.core.model import LayerSpec, NetworkArchitecture, TrueNorthModel, split_sizes
from repro.mapping.blocks import stride_blocks
from repro.nn.layers import BlockDense, FixedDense, Gather


def make_architecture(neurons=8, num_classes=4, layers_extra=()):
    partition = stride_blocks((8, 16), (8, 8), 8)
    layers = [
        LayerSpec(
            core_count=partition.block_count,
            neurons_per_core=neurons,
            input_indices=partition.blocks,
        )
    ]
    layers.extend(layers_extra)
    return NetworkArchitecture(
        input_dim=8 * 16,
        layers=tuple(layers),
        num_classes=num_classes,
        activation_sigma=1.0,
    )


def test_split_sizes_even_and_remainder():
    assert split_sizes(10, 2) == [5, 5]
    assert split_sizes(10, 3) == [4, 3, 3]
    with pytest.raises(ValueError):
        split_sizes(2, 3)
    with pytest.raises(ValueError):
        split_sizes(0, 1)


def test_architecture_core_counts_and_assignment():
    arch = make_architecture()
    assert arch.cores_per_network == 2
    assert arch.cores_per_layer == (2,)
    assignment = arch.class_assignment()
    assert assignment.shape == (16,)
    assert set(assignment) == {0, 1, 2, 3}
    merge = arch.merge_matrix()
    assert merge.shape == (16, 4)
    assert np.allclose(merge.sum(axis=0), 1.0)


def test_architecture_validation():
    partition = stride_blocks((8, 16), (8, 8), 8)
    good_layer = LayerSpec(2, 8, partition.blocks)
    with pytest.raises(ValueError):
        NetworkArchitecture(input_dim=10, layers=(good_layer,), num_classes=4)
    with pytest.raises(ValueError):
        NetworkArchitecture(input_dim=128, layers=(), num_classes=4)
    with pytest.raises(ValueError):
        NetworkArchitecture(input_dim=128, layers=(good_layer,), num_classes=1)
    with pytest.raises(ValueError):
        NetworkArchitecture(
            input_dim=128, layers=(LayerSpec(2, 8),), num_classes=4
        )  # first layer must define input_indices
    with pytest.raises(ValueError):
        # second layer must not define input_indices
        NetworkArchitecture(
            input_dim=128,
            layers=(good_layer, LayerSpec(1, 8, partition.blocks[:1])),
            num_classes=4,
        )
    with pytest.raises(ValueError):
        NetworkArchitecture(
            input_dim=128, layers=(good_layer,), num_classes=4, weight_init_scale=0.0
        )


def test_layer_spec_validation():
    with pytest.raises(ValueError):
        LayerSpec(core_count=0, neurons_per_core=8)
    with pytest.raises(ValueError):
        LayerSpec(core_count=1, neurons_per_core=0)
    with pytest.raises(ValueError):
        LayerSpec(core_count=1, neurons_per_core=300)
    with pytest.raises(ValueError):
        LayerSpec(core_count=2, neurons_per_core=8, input_indices=((0, 1),))


def test_deep_layer_axon_limit_enforced():
    partition = stride_blocks((16, 16), (16, 16), 16)
    first = LayerSpec(1, 256, partition.blocks)
    # 256 outputs into 1 core is fine; the same outputs into a core that
    # would need > 256 axons per block must fail.
    NetworkArchitecture(input_dim=256, layers=(first, LayerSpec(1, 10)), num_classes=4)
    big_first = LayerSpec(1, 256, partition.blocks)
    with pytest.raises(ValueError):
        NetworkArchitecture(
            input_dim=256,
            layers=(big_first, LayerSpec(1, 10), LayerSpec(1, 10)),
            num_classes=20,
        )  # last hidden layer smaller than num_classes


def test_build_network_structure():
    arch = make_architecture()
    network = arch.build_network(rng=0)
    assert isinstance(network.layers[0], Gather)
    assert isinstance(network.layers[1], BlockDense)
    assert isinstance(network.layers[-1], FixedDense)
    # All weights within [-c, +c].
    for array in network.penalized_params().values():
        assert np.all(np.abs(array) <= arch.synaptic_value + 1e-12)
    out = network.forward(np.random.default_rng(0).random((3, arch.input_dim)))
    assert out.shape == (3, arch.num_classes)


def test_model_extraction_and_float_forward_consistency():
    arch = make_architecture()
    network = arch.build_network(rng=0)
    model = TrueNorthModel.from_network(arch, network, float_accuracy=0.5)
    features = np.random.default_rng(1).random((5, arch.input_dim))
    assert np.allclose(model.float_forward(features), network.forward(features))
    assert model.cores_per_copy == 2
    assert model.predict(features).shape == (5,)


def test_model_probability_and_weight_flattening():
    arch = make_architecture()
    model = TrueNorthModel.from_network(arch, arch.build_network(rng=0))
    probabilities = model.all_probabilities()
    weights = model.all_weights()
    assert probabilities.shape == weights.shape
    assert np.all(probabilities >= 0) and np.all(probabilities <= 1)
    assert np.allclose(probabilities, np.abs(weights))


def test_model_shape_validation():
    arch = make_architecture()
    network = arch.build_network(rng=0)
    model = TrueNorthModel.from_network(arch, network)
    with pytest.raises(ValueError):
        TrueNorthModel(architecture=arch, block_weights=model.block_weights[:0])
    bad = [list(matrices) for matrices in model.block_weights]
    bad[0][0] = np.zeros((3, 3))
    with pytest.raises(ValueError):
        TrueNorthModel(architecture=arch, block_weights=bad)


def test_two_layer_architecture_builds_and_runs():
    arch = make_architecture(neurons=12, layers_extra=(LayerSpec(2, 6),))
    network = arch.build_network(rng=0)
    out = network.forward(np.random.default_rng(0).random((2, arch.input_dim)))
    assert out.shape == (2, 4)
    model = TrueNorthModel.from_network(arch, network)
    assert model.cores_per_copy == 4
    assert len(model.block_weights) == 2
