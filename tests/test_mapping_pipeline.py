"""Tests for chip programming: the chip simulator must agree with the fast evaluator."""

import numpy as np
import pytest

from repro.core.tea import TeaLearning
from repro.encoding.stochastic import StochasticEncoder
from repro.mapping.deploy import deploy_model
from repro.mapping.pipeline import program_chip, run_chip_inference


@pytest.fixture(scope="module")
def deployed_copy(small_architecture, small_dataset):
    model = TeaLearning(epochs=3, seed=0).train(small_architecture, small_dataset).model
    return deploy_model(model, rng=0)


def test_program_chip_allocates_one_core_per_corelet(deployed_copy):
    chip, core_ids = program_chip(deployed_copy)
    assert chip.allocated_cores == deployed_copy.core_count
    flat_ids = [core_id for layer in core_ids for core_id in layer]
    assert len(set(flat_ids)) == len(flat_ids)
    assert chip.input_channels() == ["pixels"]
    assert chip.output_channels() == ["classes"]


def test_chip_matches_vectorized_evaluator_spike_for_spike(deployed_copy):
    chip, core_ids = program_chip(deployed_copy)
    rng = np.random.default_rng(3)
    network = deployed_copy.corelet_network
    encoder = StochasticEncoder(spikes_per_frame=3)
    values = rng.random((1, network.input_dim))
    frames = encoder.encode(values, rng=rng)[:, 0, :]  # (ticks, input_dim)

    chip_counts = run_chip_inference(chip, deployed_copy, core_ids, frames)

    # Fast evaluator: accumulate class scores frame by frame.
    fast_counts = np.zeros(network.num_classes)
    for tick in range(frames.shape[0]):
        fast_counts += deployed_copy.class_scores(frames[tick][None, :])[0]

    # This architecture has a single hidden layer, so each input frame's
    # response appears on the output channel in the same tick, and every one
    # of the trailing drain ticks produces the network's zero-input response
    # (a zero weighted sum still satisfies y' >= 0 under McCulloch-Pitts).
    # The chip counts must therefore equal the fast evaluator's frame
    # responses plus `drain` copies of the zero-input response.
    zero_response = deployed_copy.class_scores(
        np.zeros((1, network.input_dim))
    )[0]
    depth = len(network.corelets)
    assert depth == 1
    drain = depth * (chip.router.delay + 1) + 2
    expected = fast_counts + drain * zero_response
    assert np.array_equal(chip_counts, expected.astype(np.int64))


def test_run_chip_inference_validates_shape(deployed_copy):
    chip, core_ids = program_chip(deployed_copy)
    with pytest.raises(ValueError):
        run_chip_inference(chip, deployed_copy, core_ids, np.zeros((2, 5)))


def test_chip_predictions_reasonable_on_training_like_input(
    deployed_copy, small_dataset
):
    chip, core_ids = program_chip(deployed_copy)
    encoder = StochasticEncoder(spikes_per_frame=4)
    sample = small_dataset.test.features[:1]
    frames = encoder.encode(sample, rng=0)[:, 0, :]
    counts = run_chip_inference(chip, deployed_copy, core_ids, frames)
    assert counts.shape == (deployed_copy.corelet_network.num_classes,)
    assert counts.sum() > 0
