"""Tests for chip programming: the chip simulator must agree with the fast evaluator."""

import numpy as np
import pytest

from repro.core.tea import TeaLearning
from repro.encoding.stochastic import StochasticEncoder
from repro.mapping.corelet import Corelet, CoreletNetwork
from repro.mapping.deploy import DeployedNetwork, deploy_model
from repro.mapping.pipeline import (
    program_chip,
    run_chip_inference,
    run_chip_inference_batch,
)


def _two_layer_network(rng: np.random.Generator) -> DeployedNetwork:
    """A small hand-built 2-layer deployed copy (2 cores -> 1 core)."""
    input_dim, hidden_per_core, out_neurons = 16, 5, 7
    corelets, weights = [], []
    layer0, w0 = [], []
    for index in range(2):
        ins = tuple(range(index * 8, (index + 1) * 8))
        outs = tuple(range(index * hidden_per_core, (index + 1) * hidden_per_core))
        sampled = rng.integers(-1, 2, size=(8, hidden_per_core)).astype(float)
        layer0.append(
            Corelet(0, index, ins, np.abs(sampled), np.sign(sampled), outs)
        )
        w0.append(sampled)
    corelets.append(layer0)
    weights.append(w0)
    ins = tuple(range(2 * hidden_per_core))
    sampled = rng.integers(-1, 2, size=(len(ins), out_neurons)).astype(float)
    corelets.append(
        [Corelet(1, 0, ins, np.abs(sampled), np.sign(sampled), tuple(range(out_neurons)))]
    )
    weights.append([sampled])
    assignment = np.array([0, 1, 2, 0, 1, 2, 0])  # 7 neurons, 3 classes
    network = CoreletNetwork(
        corelets=corelets,
        class_assignment=assignment,
        num_classes=3,
        input_dim=input_dim,
    )
    return DeployedNetwork(corelet_network=network, sampled_weights=weights)


@pytest.fixture(scope="module")
def deployed_copy(small_architecture, small_dataset):
    model = TeaLearning(epochs=3, seed=0).train(small_architecture, small_dataset).model
    return deploy_model(model, rng=0)


def test_program_chip_allocates_one_core_per_corelet(deployed_copy):
    chip, core_ids = program_chip(deployed_copy)
    assert chip.allocated_cores == deployed_copy.core_count
    flat_ids = [core_id for layer in core_ids for core_id in layer]
    assert len(set(flat_ids)) == len(flat_ids)
    assert chip.input_channels() == ["pixels"]
    assert chip.output_channels() == ["classes"]


def test_chip_matches_vectorized_evaluator_spike_for_spike(deployed_copy):
    chip, core_ids = program_chip(deployed_copy)
    rng = np.random.default_rng(3)
    network = deployed_copy.corelet_network
    encoder = StochasticEncoder(spikes_per_frame=3)
    values = rng.random((1, network.input_dim))
    frames = encoder.encode(values, rng=rng)[:, 0, :]  # (ticks, input_dim)

    chip_counts = run_chip_inference(chip, deployed_copy, core_ids, frames)

    # Fast evaluator: raw per-class spike sums accumulated frame by frame
    # (the chip reports raw sums; the class-mean convention of class_scores
    # is the same quantity divided by the readout population sizes).
    spikes = deployed_copy.forward_spikes(frames)  # (ticks, output_dim)
    fast_counts = np.zeros(network.num_classes)
    np.add.at(fast_counts, network.class_assignment, spikes.sum(axis=0))
    class_sizes = np.bincount(network.class_assignment, minlength=network.num_classes)
    mean_scores = deployed_copy.class_scores(frames).sum(axis=0)
    assert np.allclose(mean_scores, fast_counts / class_sizes)

    # This architecture has a single hidden layer, so each input frame's
    # response appears on the output channel in the same tick; the trailing
    # drain ticks are silent because a neuron with no active synapse never
    # fires (both in the fast evaluator and on the chip).
    zero_response = deployed_copy.class_scores(np.zeros((1, network.input_dim)))[0]
    assert np.array_equal(zero_response, np.zeros(network.num_classes))
    depth = len(network.corelets)
    assert depth == 1
    assert np.array_equal(chip_counts, fast_counts.astype(np.int64))


def test_run_chip_inference_validates_shape(deployed_copy):
    chip, core_ids = program_chip(deployed_copy)
    with pytest.raises(ValueError):
        run_chip_inference(chip, deployed_copy, core_ids, np.zeros((2, 5)))


def test_run_chip_inference_batch_validates_shape(deployed_copy):
    chip, core_ids = program_chip(deployed_copy)
    with pytest.raises(ValueError):
        run_chip_inference_batch(chip, deployed_copy, core_ids, np.zeros((3, 2, 5)))
    with pytest.raises(ValueError):
        run_chip_inference_batch(
            chip,
            deployed_copy,
            core_ids,
            np.zeros((4, deployed_copy.corelet_network.input_dim)),
        )


def test_chip_reset_preserves_routing():
    """Resetting a chip keeps the programmed inter-layer routes.

    The original reset re-created the router from scratch, dropping every
    route — which silently broke any multi-layer inference after the first
    reset (all hidden-layer spikes were dropped on the floor).
    """
    deployed = _two_layer_network(np.random.default_rng(0))
    chip, core_ids = program_chip(deployed)
    routes_before = chip.router.route_count
    assert routes_before > 0
    chip.reset()
    assert chip.router.route_count == routes_before


def test_drain_is_exact_for_layer_depth_and_router_delay():
    """Total ticks = input ticks + (depth - 1) * delay, spikes fully drained.

    The old heuristic (`depth * (delay + 1) + 2`) over-drained every sample;
    the exact latency model stops as soon as the last routed spike lands.
    """
    deployed = _two_layer_network(np.random.default_rng(1))
    rng = np.random.default_rng(2)
    frames = (rng.random((5, deployed.corelet_network.input_dim)) < 0.5).astype(
        np.int8
    )
    for delay in (1, 2, 4):
        chip, core_ids = program_chip(deployed, router_delay=delay)
        counts = run_chip_inference(chip, deployed, core_ids, frames)
        assert chip.tick == frames.shape[0] + (2 - 1) * delay
        assert not chip.router.has_pending()
        batch_counts = run_chip_inference_batch(
            chip, deployed, core_ids, frames[None]
        )
        assert chip.tick == frames.shape[0] + (2 - 1) * delay
        assert np.array_equal(batch_counts[0], counts)


def test_empty_batch_returns_empty_counts(deployed_copy):
    chip, core_ids = program_chip(deployed_copy)
    counts = run_chip_inference_batch(
        chip,
        deployed_copy,
        core_ids,
        np.zeros((0, 3, deployed_copy.corelet_network.input_dim), dtype=np.int8),
    )
    assert counts.shape == (0, deployed_copy.corelet_network.num_classes)


def test_negative_leak_lif_rejected():
    """A negative leak self-charges silent neurons: no finite drain point.

    Rather than silently truncating output spikes at the router-empty
    point, the inference drivers refuse the configuration up front.
    """
    from repro.truenorth.config import NeuronConfig

    deployed = _two_layer_network(np.random.default_rng(4))
    chip, core_ids = program_chip(
        deployed, neuron_config=NeuronConfig(threshold=2, leak=-1, history_free=False)
    )
    frames = np.zeros((2, deployed.corelet_network.input_dim), dtype=np.int8)
    with pytest.raises(ValueError, match="leak"):
        run_chip_inference(chip, deployed, core_ids, frames)
    with pytest.raises(ValueError, match="leak"):
        run_chip_inference_batch(chip, deployed, core_ids, frames[None])


def test_self_refiring_lif_rejected():
    """A reset potential at/above threshold re-fires every tick forever."""
    from repro.truenorth.config import NeuronConfig

    deployed = _two_layer_network(np.random.default_rng(5))
    chip, core_ids = program_chip(
        deployed, neuron_config=NeuronConfig(history_free=False)  # 0 >= 0
    )
    frames = np.zeros((2, deployed.corelet_network.input_dim), dtype=np.int8)
    with pytest.raises(ValueError, match="reset"):
        run_chip_inference(chip, deployed, core_ids, frames)
    with pytest.raises(ValueError, match="reset"):
        run_chip_inference_batch(chip, deployed, core_ids, frames[None])


def test_multi_layer_rejects_zero_router_delay():
    """Zero-delay events target an already-served tick and would be lost."""
    deployed = _two_layer_network(np.random.default_rng(3))
    chip, core_ids = program_chip(deployed)
    chip.router.delay = 0
    frames = np.zeros((2, deployed.corelet_network.input_dim), dtype=np.int8)
    with pytest.raises(ValueError):
        run_chip_inference(chip, deployed, core_ids, frames)
    with pytest.raises(ValueError):
        run_chip_inference_batch(chip, deployed, core_ids, frames[None])


def test_chip_predictions_reasonable_on_training_like_input(
    deployed_copy, small_dataset
):
    chip, core_ids = program_chip(deployed_copy)
    encoder = StochasticEncoder(spikes_per_frame=4)
    sample = small_dataset.test.features[:1]
    frames = encoder.encode(sample, rng=0)[:, 0, :]
    counts = run_chip_inference(chip, deployed_copy, core_ids, frames)
    assert counts.shape == (deployed_copy.corelet_network.num_classes,)
    assert (counts >= 0).all()
    # Whatever the chip reports must equal the fast evaluator's raw class
    # sums on the same frames (the counts themselves may legitimately be
    # zero for a weakly-trained copy — the firing gate means silent drain
    # ticks no longer pad them).
    network = deployed_copy.corelet_network
    spikes = deployed_copy.forward_spikes(frames)
    fast_counts = np.zeros(network.num_classes)
    np.add.at(fast_counts, network.class_assignment, spikes.sum(axis=0))
    assert np.array_equal(counts, fast_counts.astype(np.int64))
