"""Tests for chip programming: the chip simulator must agree with the fast evaluator."""

import numpy as np
import pytest

from repro.core.tea import TeaLearning
from repro.encoding.stochastic import StochasticEncoder
from repro.mapping.deploy import deploy_model
from repro.mapping.pipeline import program_chip, run_chip_inference


@pytest.fixture(scope="module")
def deployed_copy(small_architecture, small_dataset):
    model = TeaLearning(epochs=3, seed=0).train(small_architecture, small_dataset).model
    return deploy_model(model, rng=0)


def test_program_chip_allocates_one_core_per_corelet(deployed_copy):
    chip, core_ids = program_chip(deployed_copy)
    assert chip.allocated_cores == deployed_copy.core_count
    flat_ids = [core_id for layer in core_ids for core_id in layer]
    assert len(set(flat_ids)) == len(flat_ids)
    assert chip.input_channels() == ["pixels"]
    assert chip.output_channels() == ["classes"]


def test_chip_matches_vectorized_evaluator_spike_for_spike(deployed_copy):
    chip, core_ids = program_chip(deployed_copy)
    rng = np.random.default_rng(3)
    network = deployed_copy.corelet_network
    encoder = StochasticEncoder(spikes_per_frame=3)
    values = rng.random((1, network.input_dim))
    frames = encoder.encode(values, rng=rng)[:, 0, :]  # (ticks, input_dim)

    chip_counts = run_chip_inference(chip, deployed_copy, core_ids, frames)

    # Fast evaluator: raw per-class spike sums accumulated frame by frame
    # (the chip reports raw sums; the class-mean convention of class_scores
    # is the same quantity divided by the readout population sizes).
    spikes = deployed_copy.forward_spikes(frames)  # (ticks, output_dim)
    fast_counts = np.zeros(network.num_classes)
    np.add.at(fast_counts, network.class_assignment, spikes.sum(axis=0))
    class_sizes = np.bincount(network.class_assignment, minlength=network.num_classes)
    mean_scores = deployed_copy.class_scores(frames).sum(axis=0)
    assert np.allclose(mean_scores, fast_counts / class_sizes)

    # This architecture has a single hidden layer, so each input frame's
    # response appears on the output channel in the same tick; the trailing
    # drain ticks are silent because a neuron with no active synapse never
    # fires (both in the fast evaluator and on the chip).
    zero_response = deployed_copy.class_scores(np.zeros((1, network.input_dim)))[0]
    assert np.array_equal(zero_response, np.zeros(network.num_classes))
    depth = len(network.corelets)
    assert depth == 1
    assert np.array_equal(chip_counts, fast_counts.astype(np.int64))


def test_run_chip_inference_validates_shape(deployed_copy):
    chip, core_ids = program_chip(deployed_copy)
    with pytest.raises(ValueError):
        run_chip_inference(chip, deployed_copy, core_ids, np.zeros((2, 5)))


def test_chip_predictions_reasonable_on_training_like_input(
    deployed_copy, small_dataset
):
    chip, core_ids = program_chip(deployed_copy)
    encoder = StochasticEncoder(spikes_per_frame=4)
    sample = small_dataset.test.features[:1]
    frames = encoder.encode(sample, rng=0)[:, 0, :]
    counts = run_chip_inference(chip, deployed_copy, core_ids, frames)
    assert counts.shape == (deployed_copy.corelet_network.num_classes,)
    assert (counts >= 0).all()
    # Whatever the chip reports must equal the fast evaluator's raw class
    # sums on the same frames (the counts themselves may legitimately be
    # zero for a weakly-trained copy — the firing gate means silent drain
    # ticks no longer pad them).
    network = deployed_copy.corelet_network
    spikes = deployed_copy.forward_spikes(frames)
    fast_counts = np.zeros(network.num_classes)
    np.add.at(fast_counts, network.class_assignment, spikes.sum(axis=0))
    assert np.array_equal(counts, fast_counts.astype(np.int64))
