"""Tests for corelet construction, deployment sampling, and duplication."""

import numpy as np
import pytest

from repro.mapping.corelet import Corelet, build_corelets
from repro.mapping.deploy import (
    deploy_model,
    evaluate_deployed_scores,
    sample_connectivity,
)
from repro.mapping.duplication import deploy_with_copies
from repro.mapping.placement import place_on_chip
from repro.truenorth.config import ChipConfig


@pytest.fixture(scope="module")
def trained_model(small_architecture, small_dataset):
    from repro.core.tea import TeaLearning

    return TeaLearning(epochs=3, seed=0).train(small_architecture, small_dataset).model


def test_build_corelets_structure(trained_model):
    network = build_corelets(trained_model)
    arch = trained_model.architecture
    assert network.core_count == arch.cores_per_network
    assert network.num_classes == arch.num_classes
    assert network.input_dim == arch.input_dim
    first_layer = network.corelets[0]
    assert len(first_layer) == arch.layers[0].core_count
    for corelet, indices in zip(first_layer, arch.layers[0].input_indices):
        assert corelet.input_channels == tuple(indices)
        assert corelet.axon_count == len(indices)
        assert corelet.neuron_count == arch.layers[0].neurons_per_core


def test_corelet_expected_weights_match_trained_weights(trained_model):
    network = build_corelets(trained_model)
    for layer_corelets, layer_weights in zip(network.corelets, trained_model.block_weights):
        for corelet, weights in zip(layer_corelets, layer_weights):
            assert np.allclose(corelet.expected_weights(), weights, atol=1e-12)


def test_corelet_validation():
    with pytest.raises(ValueError):
        Corelet(
            layer=0,
            index=0,
            input_channels=(0, 1),
            probabilities=np.zeros((3, 2)),
            synaptic_values=np.zeros((2, 2)),
            output_channels=(0, 1),
        )
    with pytest.raises(ValueError):
        Corelet(
            layer=0,
            index=0,
            input_channels=(0,),
            probabilities=np.array([[1.5]]),
            synaptic_values=np.array([[1.0]]),
            output_channels=(0,),
        )
    with pytest.raises(ValueError):
        Corelet(
            layer=0,
            index=0,
            input_channels=(),
            probabilities=np.zeros((0, 1)),
            synaptic_values=np.zeros((0, 1)),
            output_channels=(0,),
        )


def test_sample_connectivity_respects_probabilities(trained_model):
    network = build_corelets(trained_model)
    corelet = network.corelets[0][0]
    samples = np.stack([sample_connectivity(corelet, rng=i) for i in range(200)])
    on_rate = (samples != 0).mean(axis=0)
    assert np.allclose(on_rate, corelet.probabilities, atol=0.12)
    # Sampled values are either zero or the signed synaptic value.
    nonzero = samples[samples != 0]
    assert set(np.unique(np.abs(nonzero))) <= {1.0}


def test_deploy_model_unbiased_in_expectation(trained_model):
    network = build_corelets(trained_model)
    corelet = network.corelets[0][0]
    average = np.zeros_like(corelet.probabilities)
    repeats = 200
    for seed in range(repeats):
        deployed = deploy_model(trained_model, rng=seed, corelet_network=network)
        average += deployed.sampled_weights[0][0]
    average /= repeats
    assert np.allclose(average, corelet.expected_weights(), atol=0.15)


def test_forward_spikes_shapes_and_binary_output(trained_model):
    deployed = deploy_model(trained_model, rng=0)
    frame = np.random.default_rng(0).integers(0, 2, size=(7, trained_model.architecture.input_dim))
    spikes = deployed.forward_spikes(frame)
    assert spikes.shape == (7, trained_model.architecture.layers[-1].output_dim)
    assert set(np.unique(spikes)) <= {0.0, 1.0}
    scores = deployed.class_scores(frame)
    assert scores.shape == (7, trained_model.architecture.num_classes)


def test_forward_spikes_validates_input(trained_model):
    deployed = deploy_model(trained_model, rng=0)
    with pytest.raises(ValueError):
        deployed.forward_spikes(np.zeros((2, 5)))


def test_evaluate_deployed_scores_grid_shape(trained_model):
    copies = [deploy_model(trained_model, rng=i) for i in range(3)]
    features = np.random.default_rng(1).random((5, trained_model.architecture.input_dim))
    scores = evaluate_deployed_scores(copies, features, spikes_per_frame=2, rng=0)
    assert scores.shape == (3, 2, 5, trained_model.architecture.num_classes)
    with pytest.raises(ValueError):
        evaluate_deployed_scores([], features, 1)


def test_deploy_with_copies_counts_cores(trained_model):
    deployment = deploy_with_copies(trained_model, copies=3, rng=0)
    assert deployment.copy_count == 3
    assert deployment.cores_per_copy == trained_model.cores_per_copy
    assert deployment.total_cores == 3 * trained_model.cores_per_copy
    # Copies are sampled independently.
    first = deployment.copies[0].sampled_weights[0][0]
    second = deployment.copies[1].sampled_weights[0][0]
    assert not np.array_equal(first, second)
    with pytest.raises(ValueError):
        deploy_with_copies(trained_model, copies=0)


def test_duplicated_prediction_shape(trained_model):
    deployment = deploy_with_copies(trained_model, copies=2, rng=0)
    features = np.random.default_rng(2).random((6, trained_model.architecture.input_dim))
    predictions = deployment.predict(features, spikes_per_frame=2, rng=0)
    assert predictions.shape == (6,)
    assert set(np.unique(predictions)) <= set(range(trained_model.architecture.num_classes))


def test_placement_assigns_unique_cores(trained_model):
    network = build_corelets(trained_model)
    placement = place_on_chip(network, copies=3, chip_config=ChipConfig(grid_shape=(8, 8)))
    assert placement.occupied_cores == 3 * network.core_count
    positions = list(placement.assignments.values())
    assert len(set(positions)) == len(positions)
    assert placement.max_interlayer_distance() >= 0


def test_placement_capacity_enforced(trained_model):
    network = build_corelets(trained_model)
    with pytest.raises(RuntimeError):
        place_on_chip(network, copies=100, chip_config=ChipConfig(grid_shape=(4, 4)))
    with pytest.raises(ValueError):
        place_on_chip(network, copies=0)
