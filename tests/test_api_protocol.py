"""Tests for the repro.api protocol layer: requests, results, registry."""

import numpy as np
import pytest

from repro.api import (
    BackendCapabilities,
    ChipBackend,
    EvalRequest,
    EvaluationBackend,
    ReferenceBackend,
    ResultShapeError,
    VectorizedBackend,
    backend_names,
    create_backend,
    register_backend,
)


@pytest.fixture(scope="module")
def trained(tiny_context):
    return tiny_context.result("tea").model, tiny_context.evaluation_dataset()


# ----------------------------------------------------------------------
# EvalRequest normalization and validation
# ----------------------------------------------------------------------
def test_request_normalizes_grid_levels(trained):
    model, dataset = trained
    request = EvalRequest(
        model=model, dataset=dataset, copy_levels=[4, 1, 4, 2], spf_levels=(2, 1, 2)
    )
    assert request.copy_levels == (1, 2, 4)
    assert request.spf_levels == (1, 2)
    assert request.max_copies == 4
    assert request.max_spf == 2


@pytest.mark.parametrize(
    "kwargs",
    [
        {"copy_levels": ()},
        {"copy_levels": (0,)},
        {"spf_levels": (-1,)},
        {"repeats": 0},
        {"seed": True},
        {"seed": np.random.default_rng(0)},
        {"encoder": "morse"},
        {"max_samples": 0},
        {"router_delay": 0},
    ],
)
def test_request_rejects_invalid_fields(trained, kwargs):
    model, dataset = trained
    with pytest.raises(ValueError):
        EvalRequest(model=model, dataset=dataset, **kwargs)


def test_request_accepts_numpy_integer_seed(trained):
    model, dataset = trained
    request = EvalRequest(model=model, dataset=dataset, seed=np.int64(7))
    assert request.seed == 7 and isinstance(request.seed, int)


def test_request_evaluation_dataset_caps_samples(trained):
    model, dataset = trained
    request = EvalRequest(model=model, dataset=dataset, max_samples=10)
    assert request.evaluation_dataset().sample_count == 10
    assert EvalRequest(model=model, dataset=dataset).evaluation_dataset() is dataset


def test_request_cycle_accuracy_flags(trained):
    model, dataset = trained
    assert not EvalRequest(model=model, dataset=dataset).needs_cycle_accuracy
    assert EvalRequest(
        model=model, dataset=dataset, collect_spike_counters=True
    ).needs_cycle_accuracy
    assert EvalRequest(
        model=model, dataset=dataset, router_delay=2
    ).needs_cycle_accuracy
    assert EvalRequest(
        model=model, dataset=dataset, stochastic_synapses=True
    ).needs_cycle_accuracy


def test_with_levels_keeps_everything_else(trained):
    model, dataset = trained
    request = EvalRequest(model=model, dataset=dataset, repeats=2, seed=5)
    widened = request.with_levels((1, 8), (1, 2))
    assert widened.copy_levels == (1, 8)
    assert widened.spf_levels == (1, 2)
    assert widened.repeats == 2 and widened.seed == 5


# ----------------------------------------------------------------------
# backend protocol and registry
# ----------------------------------------------------------------------
def test_builtin_backends_registered():
    assert set(backend_names()) >= {"vectorized", "reference", "chip"}


@pytest.mark.parametrize(
    "factory", [VectorizedBackend, ReferenceBackend, ChipBackend]
)
def test_builtin_backends_satisfy_protocol(factory):
    backend = factory()
    assert isinstance(backend, EvaluationBackend)
    caps = backend.capabilities()
    assert isinstance(caps, BackendCapabilities)
    assert caps.name == backend.name


def test_capability_flags_match_design():
    assert VectorizedBackend().capabilities().spf_grids
    assert VectorizedBackend().capabilities().cacheable
    assert not VectorizedBackend().capabilities().cycle_accurate
    assert ChipBackend().capabilities().cycle_accurate
    # The chip serves (copies, spf, repeats) grids in one pass per spf
    # level (repeat-folded multi-copy images) — grid-capable since PR 7.
    assert ChipBackend().capabilities().spf_grids
    assert ChipBackend(multicopy=False).capabilities().spf_grids
    assert not ReferenceBackend().capabilities().cacheable


def test_create_backend_unknown_name():
    with pytest.raises(KeyError):
        create_backend("gpu-someday")


def test_register_backend_replaces_and_validates():
    class Dummy:
        name = "dummy-test-backend"

        def capabilities(self):
            return BackendCapabilities(
                name=self.name,
                description="",
                spf_grids=True,
                cycle_accurate=False,
                cacheable=False,
            )

        def evaluate(self, request):  # pragma: no cover - never called
            raise NotImplementedError

    register_backend("dummy-test-backend", Dummy)
    try:
        assert "dummy-test-backend" in backend_names()
        assert isinstance(create_backend("dummy-test-backend"), Dummy)
    finally:
        from repro.api import backends as backends_module

        del backends_module._REGISTRY["dummy-test-backend"]
    with pytest.raises(ValueError):
        register_backend("", Dummy)


# ----------------------------------------------------------------------
# EvalResult helpers
# ----------------------------------------------------------------------
def test_result_accessors_and_class_counts(trained):
    model, dataset = trained
    result = VectorizedBackend().evaluate(
        EvalRequest(
            model=model,
            dataset=dataset,
            copy_levels=(1, 2),
            spf_levels=(1, 2),
            repeats=2,
            seed=0,
        )
    )
    batch = dataset.sample_count
    classes = model.architecture.num_classes
    assert result.scores.shape == (2, 2, 2, batch, classes)
    assert result.accuracy.shape == (2, 2, 2)
    assert result.mean_accuracy.shape == (2, 2)
    assert result.accuracy_at(2, 1) == pytest.approx(result.mean_accuracy[1, 0])
    counts = result.class_counts()
    assert counts.dtype == np.int64
    # Counts recover the scores exactly: scores are counts / n_k.
    assert np.array_equal(
        counts / result.class_neuron_counts, result.scores
    )
    # Counts accumulate monotonically along the copy and spf axes.
    assert np.all(np.diff(counts, axis=1) >= 0)
    assert np.all(np.diff(counts, axis=2) >= 0)


def test_class_counts_validates_shapes_with_typed_errors(trained):
    """Mismatched tensors raise ResultShapeError, never broadcast silently."""
    from dataclasses import replace

    model, dataset = trained
    result = VectorizedBackend().evaluate(
        EvalRequest(
            model=model, dataset=dataset, copy_levels=(1, 2), spf_levels=(1,), seed=0
        )
    )
    # Class axis disagreeing with n_k: numpy would happily broadcast a
    # same-length-1 n_k and return well-shaped wrong integers.
    bad_nk = replace(result, class_neuron_counts=np.ones(1, dtype=np.int64))
    with pytest.raises(ResultShapeError, match="class axis"):
        bad_nk.class_counts()
    bad_nk2 = replace(
        result,
        class_neuron_counts=np.ones(
            result.scores.shape[-1] + 1, dtype=np.int64
        ),
    )
    with pytest.raises(ResultShapeError, match="class axis"):
        bad_nk2.class_counts()
    # Copies axis disagreeing with the declared levels.
    bad_copies = replace(result, copy_levels=(1, 2, 4))
    with pytest.raises(ResultShapeError, match="grid axes"):
        bad_copies.class_counts()
    # Wrong rank entirely.
    bad_rank = replace(result, scores=result.scores[0])
    with pytest.raises(ResultShapeError, match="5-D|must be"):
        bad_rank.class_counts()
    # The untouched result still recovers its counts.
    assert result.class_counts().dtype == np.int64


def test_backend_spike_counter_plumbing_validates_copies_axis(trained):
    """_result_from_cumulative rejects mis-shaped tensors with typed errors."""
    from repro.api.backends import _result_from_cumulative

    model, dataset = trained
    request = EvalRequest(
        model=model, dataset=dataset, copy_levels=(1, 2), spf_levels=(2,), seed=0
    )
    batch = dataset.sample_count
    classes = model.architecture.num_classes
    n_k = np.ones(classes, dtype=np.int64)
    good = [np.zeros((2, 1, batch, classes))]  # (max_c, spf, batch, classes)

    # Cumulative tensors covering fewer copies than requested: previously a
    # bare IndexError from fancy indexing, now a typed error up front.
    with pytest.raises(ResultShapeError, match="copies"):
        _result_from_cumulative(
            request,
            "chip",
            [np.zeros((1, 1, batch, classes))],
            dataset,
            n_k,
            cores_per_copy=2,
            spf_axis_levels=(2,),
        )
    # Spike counters whose copies axis disagrees with the request.
    with pytest.raises(ResultShapeError, match="spike counters"):
        _result_from_cumulative(
            request,
            "chip",
            good,
            dataset,
            n_k,
            cores_per_copy=2,
            spike_counters=np.zeros((1, 3, 2, batch), dtype=np.int64),
            spf_axis_levels=(2,),
        )
    # Spike counters with a wrong batch axis (silent broadcasting bait).
    with pytest.raises(ResultShapeError, match="spike counters"):
        _result_from_cumulative(
            request,
            "chip",
            good,
            dataset,
            n_k,
            cores_per_copy=2,
            spike_counters=np.zeros((1, 2, 2, batch + 1), dtype=np.int64),
            spf_axis_levels=(2,),
        )
    # The well-shaped call still goes through.
    ok = _result_from_cumulative(
        request,
        "chip",
        good,
        dataset,
        n_k,
        cores_per_copy=2,
        spike_counters=np.zeros((1, 2, 2, batch), dtype=np.int64),
        spf_axis_levels=(2,),
    )
    assert ok.scores.shape == (1, 2, 1, batch, classes)


def test_result_sweep_conversion(trained):
    model, dataset = trained
    result = VectorizedBackend().evaluate(
        EvalRequest(
            model=model, dataset=dataset, copy_levels=(1, 2), spf_levels=(1,), seed=0
        )
    )
    sweep = result.sweep(label="api")
    assert sweep.copy_levels == (1, 2)
    assert sweep.label == "api"
    assert np.array_equal(sweep.mean_accuracy, result.mean_accuracy)
    assert sweep.cores[1] == 2 * model.architecture.cores_per_network
