"""Tests for the repro.api protocol layer: requests, results, registry."""

import numpy as np
import pytest

from repro.api import (
    BackendCapabilities,
    ChipBackend,
    EvalRequest,
    EvaluationBackend,
    ReferenceBackend,
    VectorizedBackend,
    backend_names,
    create_backend,
    register_backend,
)


@pytest.fixture(scope="module")
def trained(tiny_context):
    return tiny_context.result("tea").model, tiny_context.evaluation_dataset()


# ----------------------------------------------------------------------
# EvalRequest normalization and validation
# ----------------------------------------------------------------------
def test_request_normalizes_grid_levels(trained):
    model, dataset = trained
    request = EvalRequest(
        model=model, dataset=dataset, copy_levels=[4, 1, 4, 2], spf_levels=(2, 1, 2)
    )
    assert request.copy_levels == (1, 2, 4)
    assert request.spf_levels == (1, 2)
    assert request.max_copies == 4
    assert request.max_spf == 2


@pytest.mark.parametrize(
    "kwargs",
    [
        {"copy_levels": ()},
        {"copy_levels": (0,)},
        {"spf_levels": (-1,)},
        {"repeats": 0},
        {"seed": True},
        {"seed": np.random.default_rng(0)},
        {"encoder": "morse"},
        {"max_samples": 0},
        {"router_delay": 0},
    ],
)
def test_request_rejects_invalid_fields(trained, kwargs):
    model, dataset = trained
    with pytest.raises(ValueError):
        EvalRequest(model=model, dataset=dataset, **kwargs)


def test_request_accepts_numpy_integer_seed(trained):
    model, dataset = trained
    request = EvalRequest(model=model, dataset=dataset, seed=np.int64(7))
    assert request.seed == 7 and isinstance(request.seed, int)


def test_request_evaluation_dataset_caps_samples(trained):
    model, dataset = trained
    request = EvalRequest(model=model, dataset=dataset, max_samples=10)
    assert request.evaluation_dataset().sample_count == 10
    assert EvalRequest(model=model, dataset=dataset).evaluation_dataset() is dataset


def test_request_cycle_accuracy_flags(trained):
    model, dataset = trained
    assert not EvalRequest(model=model, dataset=dataset).needs_cycle_accuracy
    assert EvalRequest(
        model=model, dataset=dataset, collect_spike_counters=True
    ).needs_cycle_accuracy
    assert EvalRequest(
        model=model, dataset=dataset, router_delay=2
    ).needs_cycle_accuracy


def test_with_levels_keeps_everything_else(trained):
    model, dataset = trained
    request = EvalRequest(model=model, dataset=dataset, repeats=2, seed=5)
    widened = request.with_levels((1, 8), (1, 2))
    assert widened.copy_levels == (1, 8)
    assert widened.spf_levels == (1, 2)
    assert widened.repeats == 2 and widened.seed == 5


# ----------------------------------------------------------------------
# backend protocol and registry
# ----------------------------------------------------------------------
def test_builtin_backends_registered():
    assert set(backend_names()) >= {"vectorized", "reference", "chip"}


@pytest.mark.parametrize(
    "factory", [VectorizedBackend, ReferenceBackend, ChipBackend]
)
def test_builtin_backends_satisfy_protocol(factory):
    backend = factory()
    assert isinstance(backend, EvaluationBackend)
    caps = backend.capabilities()
    assert isinstance(caps, BackendCapabilities)
    assert caps.name == backend.name


def test_capability_flags_match_design():
    assert VectorizedBackend().capabilities().spf_grids
    assert VectorizedBackend().capabilities().cacheable
    assert not VectorizedBackend().capabilities().cycle_accurate
    assert ChipBackend().capabilities().cycle_accurate
    assert not ChipBackend().capabilities().spf_grids
    assert not ReferenceBackend().capabilities().cacheable


def test_create_backend_unknown_name():
    with pytest.raises(KeyError):
        create_backend("gpu-someday")


def test_register_backend_replaces_and_validates():
    class Dummy:
        name = "dummy-test-backend"

        def capabilities(self):
            return BackendCapabilities(
                name=self.name,
                description="",
                spf_grids=True,
                cycle_accurate=False,
                cacheable=False,
            )

        def evaluate(self, request):  # pragma: no cover - never called
            raise NotImplementedError

    register_backend("dummy-test-backend", Dummy)
    try:
        assert "dummy-test-backend" in backend_names()
        assert isinstance(create_backend("dummy-test-backend"), Dummy)
    finally:
        from repro.api import backends as backends_module

        del backends_module._REGISTRY["dummy-test-backend"]
    with pytest.raises(ValueError):
        register_backend("", Dummy)


# ----------------------------------------------------------------------
# EvalResult helpers
# ----------------------------------------------------------------------
def test_result_accessors_and_class_counts(trained):
    model, dataset = trained
    result = VectorizedBackend().evaluate(
        EvalRequest(
            model=model,
            dataset=dataset,
            copy_levels=(1, 2),
            spf_levels=(1, 2),
            repeats=2,
            seed=0,
        )
    )
    batch = dataset.sample_count
    classes = model.architecture.num_classes
    assert result.scores.shape == (2, 2, 2, batch, classes)
    assert result.accuracy.shape == (2, 2, 2)
    assert result.mean_accuracy.shape == (2, 2)
    assert result.accuracy_at(2, 1) == pytest.approx(result.mean_accuracy[1, 0])
    counts = result.class_counts()
    assert counts.dtype == np.int64
    # Counts recover the scores exactly: scores are counts / n_k.
    assert np.array_equal(
        counts / result.class_neuron_counts, result.scores
    )
    # Counts accumulate monotonically along the copy and spf axes.
    assert np.all(np.diff(counts, axis=1) >= 0)
    assert np.all(np.diff(counts, axis=2) >= 0)


def test_result_sweep_conversion(trained):
    model, dataset = trained
    result = VectorizedBackend().evaluate(
        EvalRequest(
            model=model, dataset=dataset, copy_levels=(1, 2), spf_levels=(1,), seed=0
        )
    )
    sweep = result.sweep(label="api")
    assert sweep.copy_levels == (1, 2)
    assert sweep.label == "api"
    assert np.array_equal(sweep.mean_accuracy, result.mean_accuracy)
    assert sweep.cores[1] == 2 * model.architecture.cores_per_network
