"""Tests for the weight/probability mapping (Eq. 6-7) and variance analysis (Eq. 9-15)."""

import numpy as np
import pytest

from repro.core.probability import (
    clip_weights_to_probability_range,
    probabilities_to_weights,
    split_excitatory_inhibitory,
    weights_to_probabilities,
)
from repro.core.variance import (
    deviation_variance,
    firing_probability,
    mean_synaptic_variance,
    presynaptic_sum_statistics,
    synaptic_variance,
    worst_case_probability,
)


# --------------------------------------------------------------- probability
def test_weights_to_probabilities_expectation_preserved():
    weights = np.array([[0.3, -0.7], [1.0, 0.0]])
    mapping = weights_to_probabilities(weights, synaptic_value=1.0)
    reconstructed = probabilities_to_weights(mapping.probabilities, mapping.synaptic_values)
    assert np.allclose(reconstructed, weights)
    assert mapping.clipped_fraction == 0.0


def test_weights_beyond_value_are_clipped():
    weights = np.array([2.0, -3.0, 0.5])
    mapping = weights_to_probabilities(weights, synaptic_value=1.0)
    assert mapping.clipped_fraction == pytest.approx(2 / 3)
    assert np.all(mapping.probabilities <= 1.0)
    assert np.array_equal(np.sign(mapping.synaptic_values), np.sign(weights))


def test_synaptic_value_scales_probabilities():
    weights = np.array([0.5])
    mapping = weights_to_probabilities(weights, synaptic_value=2.0)
    assert mapping.probabilities[0] == 0.25
    assert mapping.synaptic_values[0] == 2.0


def test_probability_mapping_validation():
    with pytest.raises(ValueError):
        weights_to_probabilities(np.array([1.0]), synaptic_value=0.0)
    with pytest.raises(ValueError):
        probabilities_to_weights(np.array([0.5]), np.array([1.0, 1.0]))
    with pytest.raises(ValueError):
        probabilities_to_weights(np.array([1.5]), np.array([1.0]))


def test_clip_weights_to_probability_range():
    clipped = clip_weights_to_probability_range(np.array([-5.0, 0.2, 5.0]), 1.0)
    assert np.array_equal(clipped, [-1.0, 0.2, 1.0])
    with pytest.raises(ValueError):
        clip_weights_to_probability_range(np.array([1.0]), 0.0)


def test_split_excitatory_inhibitory():
    positive, negative = split_excitatory_inhibitory(np.array([0.4, -0.6, 0.0]))
    assert np.allclose(positive, [0.4, 0.0, 0.0])
    assert np.allclose(negative, [0.0, 0.6, 0.0])


# --------------------------------------------------------------- variance
def test_synaptic_variance_formula_and_maximum():
    probabilities = np.linspace(0, 1, 101)
    values = np.ones_like(probabilities) * 2.0
    variance = synaptic_variance(probabilities, values)
    assert np.allclose(variance, 4.0 * probabilities * (1 - probabilities))
    worst_p, factor = worst_case_probability()
    assert probabilities[np.argmax(variance)] == pytest.approx(worst_p)
    assert variance.max() == pytest.approx(4.0 * factor)


def test_synaptic_variance_zero_at_poles():
    variance = synaptic_variance(np.array([0.0, 1.0]), np.array([3.0, 3.0]))
    assert np.all(variance == 0.0)


def test_presynaptic_statistics_match_monte_carlo():
    rng = np.random.default_rng(0)
    probabilities = np.array([0.2, 0.8, 0.5, 1.0])
    values = np.array([1.0, -1.0, 2.0, 1.0])
    spikes = np.array([0.9, 0.4, 0.6, 1.0])
    stats = presynaptic_sum_statistics(probabilities, values, spikes)
    samples = []
    for _ in range(20000):
        w = values * (rng.random(4) < probabilities)
        x = (rng.random(4) < spikes).astype(float)
        samples.append(np.dot(w, x))
    samples = np.asarray(samples)
    assert np.isclose(stats.mean, samples.mean(), atol=0.05)
    assert np.isclose(stats.variance, samples.var(), rtol=0.1)
    assert stats.std == pytest.approx(np.sqrt(stats.variance))


def test_deviation_variance_equals_sum_variance():
    probabilities = np.array([0.3, 0.6])
    values = np.array([1.0, -2.0])
    spikes = np.array([0.5, 0.5])
    assert deviation_variance(probabilities, values, spikes) == pytest.approx(
        presynaptic_sum_statistics(probabilities, values, spikes).variance
    )


def test_deterministic_connections_leave_only_spike_variance():
    probabilities = np.array([1.0, 1.0])
    values = np.array([1.0, 1.0])
    spikes = np.array([0.5, 0.5])
    stats = presynaptic_sum_statistics(probabilities, values, spikes)
    assert stats.variance == pytest.approx(2 * 0.25)


def test_firing_probability_limits():
    assert firing_probability(0.0, 1.0) == pytest.approx(0.5)
    assert firing_probability(10.0, 1.0) == pytest.approx(1.0, abs=1e-6)
    assert firing_probability(-10.0, 1.0) == pytest.approx(0.0, abs=1e-6)
    assert firing_probability(1.0, 0.0) == 1.0
    assert firing_probability(-1.0, 0.0) == 0.0
    with pytest.raises(ValueError):
        firing_probability(0.0, -1.0)


def test_mean_synaptic_variance_orders_methods():
    # Probabilities concentrated at the poles must have lower mean variance
    # than probabilities near 0.5 (the paper's core argument).
    near_poles = np.array([0.01, 0.99, 0.02, 0.98])
    near_centroid = np.array([0.4, 0.5, 0.6, 0.5])
    ones = np.ones(4)
    assert mean_synaptic_variance(near_poles, ones) < mean_synaptic_variance(
        near_centroid, ones
    )
    with pytest.raises(ValueError):
        mean_synaptic_variance(np.array([]), np.array([]))


def test_variance_validation():
    with pytest.raises(ValueError):
        synaptic_variance(np.array([1.5]), np.array([1.0]))
    with pytest.raises(ValueError):
        presynaptic_sum_statistics(np.array([0.5]), np.array([1.0, 1.0]), np.array([0.5]))
    with pytest.raises(ValueError):
        presynaptic_sum_statistics(np.array([0.5]), np.array([1.0]), np.array([1.5]))
