"""The replint framework itself: suppressions, cache, runner, CLI, registry.

The suppression marker is never spelled literally in this file — the
scanner is textual, and a literal marker inside a fixture string would be
parsed as a (then unused) suppression when replint scans its own tests.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import framework
from repro.analysis.__main__ import main
from repro.analysis.cache import AnalysisCache
from repro.analysis.checkers.rng_seed import RngSeedChecker
from repro.analysis.findings import Finding
from repro.analysis.framework import (
    FileChecker,
    checker_names,
    register_checker,
    registered_checkers,
)
from repro.analysis.runner import run_analysis
from repro.analysis.suppressions import (
    SUPPRESS_RULE,
    apply_suppressions,
    parse_suppressions,
)

#: The suppression marker, assembled so this file's own source never
#: contains it (the scan is textual and covers the test tree).
MARKER = "# " + "replint: disable="

ALL_RULES = {
    "CAP-EXHAUSTIVE",
    "DTYPE-EXPLICIT",
    "FROZEN-MUT",
    "LOCK-GUARD",
    "REQ-SYNC",
    "RNG-SEED",
}

VIOLATION_MODULE = textwrap.dedent(
    """\
    import numpy as np

    def draw():
        return np.random.choice([0, 1])
    """
)

CLEAN_MODULE = textwrap.dedent(
    """\
    def draw(rng):
        return rng.integers(0, 2)
    """
)


def write_module(root, text):
    target = root / "src" / "repro" / "core" / "mod.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text, encoding="utf-8")
    return target


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_parse_valid_suppression(self):
        text = f"x = draw()  {MARKER}RNG-SEED -- fixture exemption\n"
        (suppression,) = parse_suppressions("m.py", text)
        assert suppression.line == 1
        assert suppression.rules == ("RNG-SEED",)
        assert suppression.justification == "fixture exemption"
        assert suppression.valid

    def test_parse_multiple_rules(self):
        text = f"x = 1  {MARKER}A-ONE, B-TWO -- shared site\n"
        (suppression,) = parse_suppressions("m.py", text)
        assert suppression.rules == ("A-ONE", "B-TWO")

    def test_missing_justification_is_invalid(self):
        (suppression,) = parse_suppressions("m.py", f"x = 1  {MARKER}RULE\n")
        assert suppression.rules == ("RULE",)
        assert not suppression.valid

    def test_matching_suppression_silences_finding(self):
        finding = Finding(path="m.py", line=3, rule="RULE", message="bad")
        text = "a = 1\nb = 2\n" + f"c = 3  {MARKER}RULE -- known-safe\n"
        resolved, problems = apply_suppressions(
            [finding], parse_suppressions("m.py", text)
        )
        assert problems == []
        (result,) = resolved
        assert result.suppressed
        assert result.justification == "known-safe"

    def test_unused_suppression_is_reported(self):
        text = f"x = 1  {MARKER}RULE -- stale\n"
        resolved, problems = apply_suppressions(
            [], parse_suppressions("m.py", text)
        )
        assert resolved == []
        (problem,) = problems
        assert problem.rule == SUPPRESS_RULE
        assert "unused" in problem.message

    def test_unjustified_suppression_does_not_silence(self):
        finding = Finding(path="m.py", line=1, rule="RULE", message="bad")
        text = f"x = 1  {MARKER}RULE\n"
        resolved, problems = apply_suppressions(
            [finding], parse_suppressions("m.py", text)
        )
        assert not resolved[0].suppressed
        (problem,) = problems
        assert problem.rule == SUPPRESS_RULE
        assert "justification" in problem.message

    def test_wrong_rule_or_line_does_not_match(self):
        finding = Finding(path="m.py", line=2, rule="RULE", message="bad")
        text = f"x = 1  {MARKER}OTHER -- mismatched\n"
        resolved, problems = apply_suppressions(
            [finding], parse_suppressions("m.py", text)
        )
        assert not resolved[0].suppressed
        assert len(problems) == 1  # the suppression went unused


# ----------------------------------------------------------------------
# findings
# ----------------------------------------------------------------------
class TestFinding:
    def test_json_roundtrip(self):
        finding = Finding(
            path="a.py",
            line=7,
            rule="R",
            message="m",
            suppressed=True,
            justification="why",
        )
        assert Finding.from_json(finding.to_json()) == finding

    def test_sorted_by_location_then_rule(self):
        findings = [
            Finding(path="b.py", line=1, rule="R", message="m"),
            Finding(path="a.py", line=9, rule="R", message="m"),
            Finding(path="a.py", line=2, rule="Z", message="m"),
            Finding(path="a.py", line=2, rule="A", message="m"),
        ]
        ordered = sorted(findings)
        assert [(f.path, f.line, f.rule) for f in ordered] == [
            ("a.py", 2, "A"),
            ("a.py", 2, "Z"),
            ("a.py", 9, "R"),
            ("b.py", 1, "R"),
        ]


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
class TestCache:
    def test_roundtrip_across_instances(self, tmp_path):
        path = tmp_path / "cache.json"
        finding = Finding(path="a.py", line=3, rule="R", message="m")
        cache = AnalysisCache(path)
        key = cache.key("R", 1, "digest")
        assert cache.get(key) is None
        cache.put(key, [finding])
        cache.save()

        fresh = AnalysisCache(path)
        assert fresh.get(key) == [finding]
        assert fresh.hits == 1 and fresh.misses == 0

    def test_version_is_part_of_the_key(self):
        assert AnalysisCache.key("R", 1, "d") != AnalysisCache.key("R", 2, "d")

    def test_corrupt_cache_file_is_treated_as_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("definitely not json", encoding="utf-8")
        cache = AnalysisCache(path)
        assert cache.get(cache.key("R", 1, "d")) is None

    def test_runner_replays_findings_from_cache(self, tmp_path):
        write_module(tmp_path, VIOLATION_MODULE)
        cache_path = tmp_path / ".replint-cache.json"
        first = run_analysis(
            tmp_path,
            ["src"],
            cache_path=cache_path,
            checkers=[RngSeedChecker()],
        )
        assert first.errors and first.cache_hits == 0
        assert first.cache_misses == 1

        second = run_analysis(
            tmp_path,
            ["src"],
            cache_path=cache_path,
            checkers=[RngSeedChecker()],
        )
        assert second.cache_hits == 1 and second.cache_misses == 0
        assert second.errors == first.errors

    def test_editing_the_file_invalidates_its_entry(self, tmp_path):
        target = write_module(tmp_path, VIOLATION_MODULE)
        cache_path = tmp_path / ".replint-cache.json"
        run_analysis(
            tmp_path,
            ["src"],
            cache_path=cache_path,
            checkers=[RngSeedChecker()],
        )
        target.write_text(CLEAN_MODULE, encoding="utf-8")
        report = run_analysis(
            tmp_path,
            ["src"],
            cache_path=cache_path,
            checkers=[RngSeedChecker()],
        )
        assert report.cache_hits == 0 and report.cache_misses == 1
        assert report.errors == []


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
class TestRunner:
    def test_suppressed_violation_passes_the_run(self, tmp_path):
        text = VIOLATION_MODULE.replace(
            "np.random.choice([0, 1])",
            f"np.random.choice([0, 1])  {MARKER}RNG-SEED -- fixture",
        )
        write_module(tmp_path, text)
        report = run_analysis(
            tmp_path, ["src"], checkers=[RngSeedChecker()]
        )
        assert report.exit_code == 0
        assert report.errors == []
        (suppressed,) = report.suppressed
        assert suppressed.rule == "RNG-SEED"
        assert suppressed.justification == "fixture"

    def test_unparseable_file_is_one_parse_finding(self, tmp_path):
        write_module(tmp_path, "def broken(:\n")
        report = run_analysis(
            tmp_path, ["src"], checkers=[RngSeedChecker()]
        )
        (finding,) = report.errors
        assert finding.rule == "REPLINT-PARSE"
        assert report.exit_code == 1

    def test_rule_filter_limits_checkers(self, tmp_path):
        write_module(tmp_path, VIOLATION_MODULE)
        report = run_analysis(tmp_path, ["src"], rules=["DTYPE-EXPLICIT"])
        assert report.errors == []
        assert set(report.rules) == {"DTYPE-EXPLICIT"}


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_project_rules_registered(self):
        assert ALL_RULES <= set(checker_names())
        rules = [checker.rule for checker in registered_checkers()]
        assert rules == sorted(rules)

    def test_registering_a_rule_twice_replaces(self):
        class Dummy(FileChecker):
            rule = "TEST-DUMMY"
            description = "fixture"

        class Replacement(Dummy):
            pass

        try:
            register_checker(Dummy())
            register_checker(Replacement())
            active = {
                checker.rule: checker for checker in registered_checkers()
            }
            assert isinstance(active["TEST-DUMMY"], Replacement)
        finally:
            framework._REGISTRY.pop("TEST-DUMMY", None)

    def test_rule_id_is_mandatory(self):
        with pytest.raises(ValueError):
            register_checker(FileChecker())


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_module(tmp_path, CLEAN_MODULE)
        code = main(
            ["--root", str(tmp_path), "--rule", "RNG-SEED", "--no-cache", "src"]
        )
        assert code == 0
        assert "no violations" in capsys.readouterr().out

    def test_violation_exits_one_with_clickable_anchor(self, tmp_path, capsys):
        write_module(tmp_path, VIOLATION_MODULE)
        code = main(
            ["--root", str(tmp_path), "--rule", "RNG-SEED", "--no-cache", "src"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "src/repro/core/mod.py:4: RNG-SEED" in out

    def test_json_report(self, tmp_path, capsys):
        write_module(tmp_path, VIOLATION_MODULE)
        code = main(
            [
                "--root",
                str(tmp_path),
                "--rule",
                "RNG-SEED",
                "--no-cache",
                "--json",
                "src",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["error_count"] == 1
        (error,) = payload["errors"]
        assert error["rule"] == "RNG-SEED"
        assert error["path"] == "src/repro/core/mod.py"

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        code = main(["--root", str(tmp_path), "--rule", "NO-SUCH-RULE"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_root_is_usage_error(self, tmp_path, capsys):
        code = main(["--root", str(tmp_path / "nowhere")])
        assert code == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule in out
