"""Cross-backend equivalence properties of the repro.api protocol.

The protocol's core promise: the backend is an implementation detail.  The
same :class:`EvalRequest` must produce

* **bit-identical score tensors** on the ``vectorized`` and ``reference``
  backends (``atol=0`` — the folded-gate engine is exact, see
  :mod:`repro.eval.engine`), and
* **bit-identical integer readout class counts** on the ``chip`` backend
  (scores differ only in the order of the final class-mean division).

These are property tests over grids and seeds on a tiny trained model, plus
the Figure 7 acceptance check: flipping the driver's ``backend=`` config
between ``"vectorized"`` and ``"reference"`` changes nothing in the scores.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import EvalRequest, Session
from repro.eval.runner import ScoreCache

_MODEL = {}


@pytest.fixture(scope="module", autouse=True)
def _trained(tiny_context):
    """Module-scoped trained model shared with the hypothesis tests.

    Hypothesis ``@given`` functions cannot take function-scoped fixtures, so
    the model/dataset pair is stashed in a module-level dict.
    """
    _MODEL["model"] = tiny_context.result("tea").model
    # A small slice keeps each sampled example fast; the properties do not
    # depend on the batch size.
    _MODEL["dataset"] = tiny_context.evaluation_dataset().take(24)
    yield
    _MODEL.clear()


def _request(copy_levels, spf_levels, seed, repeats=1):
    return EvalRequest(
        model=_MODEL["model"],
        dataset=_MODEL["dataset"],
        copy_levels=copy_levels,
        spf_levels=spf_levels,
        repeats=repeats,
        seed=seed,
    )


def _session():
    # A private cache so a cached vectorized tensor can never mask a
    # divergence (the reference backend is uncached by design).
    return Session(cache=ScoreCache())


# ----------------------------------------------------------------------
# vectorized vs reference: bit-identical scores
# ----------------------------------------------------------------------
@given(
    copies=st.lists(st.integers(1, 4), min_size=1, max_size=3),
    spfs=st.lists(st.integers(1, 3), min_size=1, max_size=2),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=10, deadline=None)
def test_vectorized_reference_scores_bit_identical(copies, spfs, seed):
    session = _session()
    request = _request(tuple(copies), tuple(spfs), seed)
    vectorized = session.evaluate(request, backend="vectorized")
    reference = session.evaluate(request, backend="reference")
    assert np.array_equal(vectorized.scores, reference.scores)
    assert np.array_equal(vectorized.accuracy, reference.accuracy)
    assert np.array_equal(vectorized.cores, reference.cores)


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=5, deadline=None)
def test_vectorized_reference_identical_across_repeats(seed):
    session = _session()
    request = _request((1, 2), (2,), seed, repeats=2)
    vectorized = session.evaluate(request, backend="vectorized")
    reference = session.evaluate(request, backend="reference")
    assert np.array_equal(vectorized.scores, reference.scores)


# ----------------------------------------------------------------------
# chip vs vectorized: bit-identical integer readout counts
# ----------------------------------------------------------------------
@given(
    copies=st.integers(1, 3),
    spf=st.integers(1, 3),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=6, deadline=None)
def test_chip_class_counts_bit_identical_to_vectorized(copies, spf, seed):
    session = _session()
    request = _request((1, copies), (spf,), seed)
    chip = session.evaluate(request, backend="chip")
    vectorized = session.evaluate(request, backend="vectorized")
    assert np.array_equal(chip.class_counts(), vectorized.class_counts())
    # Same counts => same predictions => same accuracy grids.
    assert np.array_equal(chip.accuracy, vectorized.accuracy)


def test_chip_multilayer_counts_match_vectorized(tiny_context):
    """The multi-layer path (router hops, drain ticks) agrees too."""
    from repro.experiments.runner import ExperimentContext

    context = ExperimentContext(
        testbench=5,
        train_size=120,
        test_size=40,
        epochs=1,
        eval_samples=16,
        repeats=1,
        seed=0,
    )
    request = EvalRequest(
        model=context.result("tea").model,
        dataset=context.evaluation_dataset(),
        copy_levels=(1, 2),
        spf_levels=(2,),
        repeats=1,
        seed=3,
    )
    session = _session()
    chip = session.evaluate(request, backend="chip")
    vectorized = session.evaluate(request, backend="vectorized")
    assert np.array_equal(chip.class_counts(), vectorized.class_counts())


# ----------------------------------------------------------------------
# acceptance: Figure 7 backend switch is a no-op on the scores
# ----------------------------------------------------------------------
def test_figure7_backend_switch_bit_identical(tiny_context):
    from repro.experiments.figure7 import run_figure7

    reports = {
        backend: run_figure7(
            tiny_context,
            copy_levels=(1, 2),
            spf_levels=(1, 2),
            session=Session(backend=backend, cache=ScoreCache()),
        )
        for backend in ("vectorized", "reference")
    }
    for method in ("tea", "biased"):
        fast = reports["vectorized"][f"_result_{method}"]
        slow = reports["reference"][f"_result_{method}"]
        assert fast.backend == "vectorized" and slow.backend == "reference"
        assert np.array_equal(fast.scores, slow.scores)
        assert np.array_equal(
            np.asarray(reports["vectorized"][method]["surface"]),
            np.asarray(reports["reference"][method]["surface"]),
        )
