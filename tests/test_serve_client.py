"""Client-side retry jitter and base-URL failover (no server required).

The retry bug this pins: ``evaluate_with_retry`` used to sleep the 429
``Retry-After`` hint *exactly*, so a shed burst of clients — all handed
the same drain estimate — woke in lockstep and re-saturated the queue
they had just drained.  The nap is now AWS-style decorrelated jitter:
drawn uniformly from ``[hint, max(hint, 3 x previous nap)]`` and clamped
to ``max_backoff``, never below the server's hint.  ``sleep`` and ``rng``
are injectable, so every property here is asserted without real waiting.
"""

from __future__ import annotations

import pytest

from repro.serve.client import (
    ServeClient,
    ServeError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)


class _SheddingService:
    """Stand-in for evaluate_payload: sheds N times, then answers."""

    def __init__(self, sheds: int, retry_after: float = 2.0) -> None:
        self.sheds = sheds
        self.retry_after = retry_after
        self.calls = 0

    def __call__(self, payload):
        self.calls += 1
        if self.calls <= self.sheds:
            raise ServiceOverloadedError(
                "shed", retry_after=self.retry_after
            )
        return {"ok": True, "payload": payload}


def _retry_client(monkeypatch, service) -> ServeClient:
    client = ServeClient(port=1)  # never actually connected
    monkeypatch.setattr(client, "evaluate_payload", service)
    return client


# ----------------------------------------------------------------------
# decorrelated jitter
# ----------------------------------------------------------------------
def test_naps_never_undercut_the_server_hint(monkeypatch):
    service = _SheddingService(sheds=6, retry_after=2.5)
    client = _retry_client(monkeypatch, service)
    naps = []
    result = client.evaluate_with_retry(
        {"model": "tea"}, retries=10, sleep=naps.append, rng=0
    )
    assert result == {"ok": True, "payload": {"model": "tea"}}
    assert len(naps) == 6
    assert all(nap >= 2.5 for nap in naps)


def test_naps_are_decorrelated_not_the_bare_hint(monkeypatch):
    """The lockstep-herd bug: every nap equal to the hint means all shed
    clients retry at the same instant.  With jitter, the naps must spread
    above the hint (all-equal-to-hint has probability ~0 under the
    uniform draw, and seeded rng makes the assertion deterministic)."""
    service = _SheddingService(sheds=8, retry_after=1.0)
    client = _retry_client(monkeypatch, service)
    naps = []
    client.evaluate_with_retry(
        {"model": "tea"}, retries=10, sleep=naps.append, rng=7
    )
    assert len(set(naps)) > 1
    assert any(nap > 1.0 for nap in naps)


def test_nap_growth_is_bounded_by_three_times_previous(monkeypatch):
    service = _SheddingService(sheds=10, retry_after=1.5)
    client = _retry_client(monkeypatch, service)
    naps = []
    client.evaluate_with_retry(
        {"model": "tea"}, retries=12, sleep=naps.append, rng=3
    )
    previous = 1.5  # the first draw's upper bound is max(hint, 3*hint)
    for nap in naps:
        assert nap <= max(1.5, 3.0 * previous) + 1e-9
        previous = nap


def test_naps_clamp_to_max_backoff(monkeypatch):
    service = _SheddingService(sheds=12, retry_after=50.0)
    client = _retry_client(monkeypatch, service)
    naps = []
    client.evaluate_with_retry(
        {"model": "tea"},
        retries=15,
        max_backoff=60.0,
        sleep=naps.append,
        rng=1,
    )
    assert all(nap <= 60.0 for nap in naps)
    assert all(nap >= 50.0 for nap in naps)


def test_same_seed_reproduces_the_same_nap_schedule(monkeypatch):
    schedules = []
    for _ in range(2):
        service = _SheddingService(sheds=5, retry_after=2.0)
        client = _retry_client(monkeypatch, service)
        naps = []
        client.evaluate_with_retry(
            {"model": "tea"}, retries=10, sleep=naps.append, rng=42
        )
        schedules.append(naps)
    assert schedules[0] == schedules[1]


def test_exhausted_retries_raise_the_final_overload(monkeypatch):
    service = _SheddingService(sheds=100, retry_after=1.0)
    client = _retry_client(monkeypatch, service)
    naps = []
    with pytest.raises(ServiceOverloadedError):
        client.evaluate_with_retry(
            {"model": "tea"}, retries=3, sleep=naps.append, rng=0
        )
    assert len(naps) == 3  # slept between attempts, not after the last


def test_non_overload_errors_propagate_immediately(monkeypatch):
    client = ServeClient(port=1)

    def explode(payload):
        raise ServeError("boom", status=500)

    monkeypatch.setattr(client, "evaluate_payload", explode)
    naps = []
    with pytest.raises(ServeError, match="boom"):
        client.evaluate_with_retry(
            {"model": "tea"}, retries=5, sleep=naps.append
        )
    assert naps == []


def test_negative_retries_rejected():
    with pytest.raises(ValueError, match="retries"):
        ServeClient(port=1).evaluate_with_retry({"model": "tea"}, retries=-1)


# ----------------------------------------------------------------------
# base-URL failover
# ----------------------------------------------------------------------
def test_failover_walks_targets_and_promotes_the_answering_one(monkeypatch):
    client = ServeClient(
        host="10.9.9.1", port=1, fallbacks=[("10.9.9.2", 2), ("10.9.9.3", 3)]
    )
    attempts = []

    def fake_once(host, port, method, path, payload):
        attempts.append((host, port))
        if port != 3:
            raise ServiceUnavailableError(
                f"cannot reach {host}:{port}", error_type="unreachable"
            )
        return 200, {}, {"status": "ok"}

    monkeypatch.setattr(client, "_http_once", fake_once)
    assert client.health() == {"status": "ok"}
    assert attempts == [("10.9.9.1", 1), ("10.9.9.2", 2), ("10.9.9.3", 3)]
    # The answering target is promoted: the next call goes there first.
    attempts.clear()
    assert client.health() == {"status": "ok"}
    assert attempts[0] == ("10.9.9.3", 3)


def test_all_targets_dead_raises_the_last_unreachable(monkeypatch):
    client = ServeClient(host="10.9.9.1", port=1, fallbacks=[("10.9.9.2", 2)])

    def fake_once(host, port, method, path, payload):
        raise ServiceUnavailableError(
            f"cannot reach {host}:{port}", error_type="unreachable"
        )

    monkeypatch.setattr(client, "_http_once", fake_once)
    with pytest.raises(ServiceUnavailableError, match="10.9.9.2:2"):
        client.health()


def test_http_level_errors_do_not_fail_over(monkeypatch):
    """A 429/500 is a real answer from a live service — trying the next
    base URL would re-submit the request, not route around a dead box."""
    client = ServeClient(host="10.9.9.1", port=1, fallbacks=[("10.9.9.2", 2)])
    attempts = []

    def fake_once(host, port, method, path, payload):
        attempts.append((host, port))
        return 429, {"retry-after": "3"}, {
            "error": {"type": "overloaded", "message": "shed", "retry_after": 3}
        }

    monkeypatch.setattr(client, "_http_once", fake_once)
    with pytest.raises(ServiceOverloadedError) as excinfo:
        client.health()
    assert excinfo.value.retry_after == 3.0
    assert attempts == [("10.9.9.1", 1)]
