"""Property tests for the serve wire codec.

The protocol promise is *losslessness*: any :class:`EvalRequest` the
protocol allows survives ``encode → json.dumps → json.loads → decode``
with every field intact (models and datasets round-trip by registry name),
and any :class:`EvalResult` survives the same trip **bit-identically**
(JSON serializes floats via ``repr``, which is exact for float64).
Hypothesis drives the field combinations, including multi-point
(copies, spf) grids and the chip-only capability flags.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import EvalRequest, EvalResult
from repro.serve.codec import (
    CodecError,
    UnknownDatasetError,
    UnknownModelError,
    decode_array,
    decode_request,
    decode_result,
    encode_array,
    encode_request,
    encode_result,
    to_eval_request,
)


class FakeRegistry:
    """Name resolution without training anything: sentinel objects.

    ``EvalRequest`` never inspects the model/dataset objects at construction
    time, so identity round-tripping is exactly what the codec must provide.
    """

    def __init__(self):
        self.models = {"tea": object(), "biased": object()}
        self.datasets = {"test": object(), "test-full": object()}

    def model(self, name):
        try:
            return self.models[name]
        except KeyError:
            raise UnknownModelError(f"unknown model {name!r}") from None

    def dataset(self, name):
        try:
            return self.datasets[name]
        except KeyError:
            raise UnknownDatasetError(f"unknown dataset {name!r}") from None


REGISTRY = FakeRegistry()

levels = st.lists(
    st.integers(min_value=1, max_value=64), min_size=1, max_size=4, unique=True
)
request_fields = st.fixed_dictionaries(
    {
        "model": st.sampled_from(sorted(REGISTRY.models)),
        "dataset": st.sampled_from(sorted(REGISTRY.datasets)),
        "backend": st.sampled_from([None, "vectorized", "chip", "reference"]),
        "copy_levels": levels,
        "spf_levels": levels,
        "repeats": st.integers(min_value=1, max_value=8),
        "seed": st.one_of(st.none(), st.integers(min_value=0, max_value=2**31)),
        "max_samples": st.one_of(st.none(), st.integers(min_value=1, max_value=10**6)),
        "collect_spike_counters": st.booleans(),
        "router_delay": st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
        "stochastic_synapses": st.booleans(),
        "link_delay": st.one_of(st.none(), st.integers(min_value=0, max_value=8)),
    }
)


@settings(max_examples=200, deadline=None)
@given(fields=request_fields)
def test_request_roundtrip_is_lossless(fields):
    """EvalRequest -> wire JSON -> EvalRequest preserves every field."""
    request = EvalRequest(
        model=REGISTRY.model(fields["model"]),
        dataset=REGISTRY.dataset(fields["dataset"]),
        copy_levels=tuple(fields["copy_levels"]),
        spf_levels=tuple(fields["spf_levels"]),
        repeats=fields["repeats"],
        seed=fields["seed"],
        max_samples=fields["max_samples"],
        collect_spike_counters=fields["collect_spike_counters"],
        router_delay=fields["router_delay"],
        stochastic_synapses=fields["stochastic_synapses"],
        link_delay=fields["link_delay"],
    )
    payload = encode_request(
        request, fields["model"], fields["dataset"], backend=fields["backend"]
    )
    over_the_wire = json.loads(json.dumps(payload))
    wire = decode_request(over_the_wire)
    assert wire.backend == fields["backend"]
    decoded = to_eval_request(wire, REGISTRY)
    assert decoded == request
    assert decoded.model is request.model
    assert decoded.dataset is request.dataset


array_shapes = st.tuples(
    st.integers(1, 3),  # repeats
    st.integers(1, 3),  # copy levels
    st.integers(1, 3),  # spf levels
    st.integers(1, 5),  # batch
    st.integers(2, 4),  # classes
)


@settings(max_examples=100, deadline=None)
@given(
    shape=array_shapes,
    seed=st.integers(min_value=0, max_value=2**31),
    scale=st.sampled_from([1e-12, 1e-3, 1.0, 1e6, 1e15]),
    with_counters=st.booleans(),
)
def test_result_roundtrip_is_bit_identical(shape, seed, scale, with_counters):
    """EvalResult -> wire JSON -> EvalResult is exact to the last bit."""
    repeats, n_copies, n_spf, batch, classes = shape
    rng = np.random.default_rng(seed)
    scores = rng.standard_normal(shape) * scale
    accuracy = rng.random((repeats, n_copies, n_spf))
    spike_counters = (
        rng.integers(0, 50, size=(repeats, n_copies, 2, batch)).astype(np.int64)
        if with_counters
        else None
    )
    result = EvalResult(
        backend="vectorized",
        copy_levels=tuple(range(1, n_copies + 1)),
        spf_levels=tuple(range(1, n_spf + 1)),
        scores=scores,
        accuracy=accuracy,
        labels=rng.integers(0, classes, size=batch).astype(np.int64),
        class_neuron_counts=rng.integers(1, 9, size=classes).astype(np.int64),
        cores=(np.arange(n_copies, dtype=np.int64) + 1) * 4,
        seed=None if seed % 2 else seed,
        repeats=repeats,
        spike_counters=spike_counters,
    )
    decoded = decode_result(json.loads(json.dumps(encode_result(result))))
    for name in ("scores", "accuracy", "labels", "class_neuron_counts", "cores"):
        original, roundtripped = getattr(result, name), getattr(decoded, name)
        assert original.dtype == roundtripped.dtype
        assert original.shape == roundtripped.shape
        assert original.tobytes() == roundtripped.tobytes()
    if with_counters:
        assert decoded.spike_counters.tobytes() == spike_counters.tobytes()
    else:
        assert decoded.spike_counters is None
    assert decoded.copy_levels == result.copy_levels
    assert decoded.spf_levels == result.spf_levels
    assert decoded.backend == result.backend
    assert decoded.seed == result.seed
    assert decoded.repeats == result.repeats


@settings(max_examples=60, deadline=None)
@given(
    shape=st.lists(st.integers(0, 4), min_size=0, max_size=3),
    dtype=st.sampled_from(["float64", "int64", "bool"]),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_array_roundtrip_any_shape_and_dtype(shape, dtype, seed):
    rng = np.random.default_rng(seed)
    if dtype == "float64":
        array = rng.standard_normal(shape)
    elif dtype == "int64":
        array = rng.integers(-(2**40), 2**40, size=shape)
    else:
        array = rng.random(shape) < 0.5
    decoded = decode_array(json.loads(json.dumps(encode_array(array))))
    assert decoded.dtype == array.dtype
    assert decoded.shape == array.shape
    assert decoded.tobytes() == array.tobytes()


# ----------------------------------------------------------------------
# strictness: malformed payloads are typed errors, not silent defaults
# ----------------------------------------------------------------------
def test_unknown_field_rejected():
    with pytest.raises(CodecError, match="unknown request fields"):
        decode_request({"model": "tea", "copy_level": [1]})


def test_missing_model_rejected():
    with pytest.raises(CodecError, match="missing the 'model'"):
        decode_request({"copy_levels": [1]})


def test_bool_is_not_an_integer():
    with pytest.raises(CodecError, match="repeats must be an integer"):
        decode_request({"model": "tea", "repeats": True})
    with pytest.raises(CodecError, match="entries must be integers"):
        decode_request({"model": "tea", "copy_levels": [True]})


def test_unknown_backend_rejected_at_decode_time():
    with pytest.raises(CodecError, match="unknown backend"):
        decode_request({"model": "tea", "backend": "warp-drive"})


def test_stochastic_synapses_must_be_boolean():
    with pytest.raises(CodecError, match="stochastic_synapses must be a boolean"):
        decode_request({"model": "tea", "stochastic_synapses": 1})
    assert decode_request({"model": "tea"}).stochastic_synapses is False
    wire = decode_request({"model": "tea", "stochastic_synapses": True})
    assert wire.stochastic_synapses is True


def test_non_object_body_rejected():
    with pytest.raises(CodecError, match="JSON object"):
        decode_request([1, 2, 3])


def test_value_range_violations_become_codec_errors():
    wire = decode_request({"model": "tea", "repeats": 0})
    with pytest.raises(CodecError, match="repeats must be positive"):
        to_eval_request(wire, REGISTRY)


def test_link_delay_must_be_a_non_negative_integer():
    with pytest.raises(CodecError, match="link_delay must be an integer"):
        decode_request({"model": "tea", "link_delay": 1.5})
    with pytest.raises(CodecError, match="link_delay must be an integer"):
        decode_request({"model": "tea", "link_delay": True})
    wire = decode_request({"model": "tea", "link_delay": -1})
    with pytest.raises(CodecError, match="link_delay"):
        to_eval_request(wire, REGISTRY)
    assert decode_request({"model": "tea"}).link_delay is None
    assert decode_request({"model": "tea", "link_delay": 0}).link_delay == 0


def test_unknown_model_and_dataset_are_typed():
    with pytest.raises(UnknownModelError):
        to_eval_request(decode_request({"model": "nope"}), REGISTRY)
    with pytest.raises(UnknownDatasetError):
        to_eval_request(
            decode_request({"model": "tea", "dataset": "nope"}), REGISTRY
        )


def test_int64_array_rejects_lossy_float_and_bool_entries():
    """np.asarray would truncate 1.7 and coerce True; the codec must not."""
    good = encode_array(np.arange(2, dtype=np.int64))
    with pytest.raises(CodecError, match="do not match dtype"):
        decode_array(dict(good, data=[1.7, 2]))
    with pytest.raises(CodecError, match="do not match dtype"):
        decode_array(dict(good, data=[True, 2]))
    with pytest.raises(CodecError, match="do not match dtype"):
        decode_array(dict(encode_array(np.zeros(1)), data=[False]))


def test_array_shape_data_mismatch_rejected():
    good = encode_array(np.arange(6, dtype=np.int64).reshape(2, 3))
    bad = dict(good, data=good["data"][:-1])
    with pytest.raises(CodecError, match="entries"):
        decode_array(bad)


def test_result_missing_field_rejected():
    result = EvalResult(
        backend="vectorized",
        copy_levels=(1,),
        spf_levels=(1,),
        scores=np.zeros((1, 1, 1, 2, 2)),
        accuracy=np.zeros((1, 1, 1)),
        labels=np.zeros(2, dtype=np.int64),
        class_neuron_counts=np.ones(2, dtype=np.int64),
        cores=np.array([4], dtype=np.int64),
        seed=0,
        repeats=1,
    )
    payload = encode_result(result)
    payload.pop("scores")
    with pytest.raises(CodecError, match="missing fields"):
        decode_result(payload)
