"""Tests for the dataset containers and the synthetic MNIST / RS130 generators."""

import numpy as np
import pytest

from repro.datasets.base import Dataset, DatasetSplits, iterate_minibatches, train_test_split
from repro.datasets.registry import DATASET_REGISTRY, dataset_summary, load_dataset
from repro.datasets.synthetic_mnist import SyntheticMnistConfig, generate_synthetic_mnist
from repro.datasets.synthetic_rs130 import (
    FEATURE_COUNT,
    SyntheticRs130Config,
    generate_synthetic_rs130,
    reshape_to_grid,
)


# --------------------------------------------------------------- containers
def test_dataset_validation_and_accessors():
    features = np.random.default_rng(0).random((10, 5))
    labels = np.arange(10) % 3
    dataset = Dataset(features, labels, num_classes=3)
    assert dataset.sample_count == 10
    assert dataset.feature_count == 5
    assert list(dataset.class_counts()) == [4, 3, 3]
    subset = dataset.subset(np.array([0, 1]))
    assert subset.sample_count == 2
    assert dataset.take(3).sample_count == 3
    with pytest.raises(ValueError):
        Dataset(features, labels[:5], num_classes=3)
    with pytest.raises(ValueError):
        Dataset(features, labels, num_classes=2)  # labels contain class 2
    with pytest.raises(ValueError):
        Dataset(features.ravel(), labels, num_classes=3)
    with pytest.raises(ValueError):
        dataset.take(0)


def test_splits_validation():
    features = np.random.default_rng(0).random((10, 5))
    labels = np.zeros(10, dtype=int)
    train = Dataset(features, labels, num_classes=2)
    bad_test = Dataset(features[:, :3], labels, num_classes=2)
    with pytest.raises(ValueError):
        DatasetSplits(train=train, test=bad_test)


def test_train_test_split_partitions_all_samples():
    features = np.random.default_rng(0).random((50, 4))
    labels = np.zeros(50, dtype=int)
    dataset = Dataset(features, labels, num_classes=2)
    splits = train_test_split(dataset, test_fraction=0.2, rng=0)
    assert splits.train.sample_count + splits.test.sample_count == 50
    assert splits.test.sample_count == 10
    with pytest.raises(ValueError):
        train_test_split(dataset, test_fraction=1.5)


def test_iterate_minibatches_covers_dataset_once():
    features = np.arange(20, dtype=float).reshape(10, 2) / 20.0
    labels = np.arange(10) % 2
    dataset = Dataset(features, labels, num_classes=2)
    batches = list(iterate_minibatches(dataset, batch_size=3, rng=0))
    assert sum(batch[0].shape[0] for batch in batches) == 10
    with pytest.raises(ValueError):
        list(iterate_minibatches(dataset, batch_size=0))


# --------------------------------------------------------------- MNIST stand-in
def test_synthetic_mnist_shapes_and_ranges():
    config = SyntheticMnistConfig(train_size=40, test_size=20, seed=0)
    splits = generate_synthetic_mnist(config)
    assert splits.train.feature_count == 784
    assert splits.train.sample_count == 40
    assert splits.test.sample_count == 20
    assert splits.num_classes == 10
    assert splits.train.image_shape == (28, 28)
    assert splits.train.features.min() >= 0.0
    assert splits.train.features.max() <= 1.0


def test_synthetic_mnist_pixels_are_mostly_saturated():
    # The paper's analysis relies on near-binary pixel intensities (so input
    # spike sampling adds little variance); check the generator delivers that.
    splits = generate_synthetic_mnist(SyntheticMnistConfig(train_size=30, test_size=10, seed=1))
    pixels = splits.train.features.ravel()
    mid = np.mean((pixels > 0.2) & (pixels < 0.8))
    assert mid < 0.15


def test_synthetic_mnist_deterministic_and_seed_sensitive():
    config = SyntheticMnistConfig(train_size=10, test_size=5, seed=3)
    a = generate_synthetic_mnist(config)
    b = generate_synthetic_mnist(config)
    assert np.array_equal(a.train.features, b.train.features)
    assert np.array_equal(a.train.labels, b.train.labels)
    c = generate_synthetic_mnist(SyntheticMnistConfig(train_size=10, test_size=5, seed=4))
    assert not np.array_equal(a.train.features, c.train.features)


def test_synthetic_mnist_all_classes_present():
    splits = generate_synthetic_mnist(SyntheticMnistConfig(train_size=200, test_size=50, seed=0))
    assert set(np.unique(splits.train.labels)) == set(range(10))


def test_synthetic_mnist_config_validation():
    with pytest.raises(ValueError):
        SyntheticMnistConfig(train_size=0)
    with pytest.raises(ValueError):
        SyntheticMnistConfig(salt_noise=1.5)
    with pytest.raises(ValueError):
        SyntheticMnistConfig(sharpness=0.0)
    with pytest.raises(ValueError):
        SyntheticMnistConfig(scale_range=(1.2, 0.8))


# --------------------------------------------------------------- RS130 stand-in
def test_synthetic_rs130_shapes_and_classes():
    config = SyntheticRs130Config(train_size=60, test_size=30, seed=0)
    splits = generate_synthetic_rs130(config)
    assert splits.train.feature_count == FEATURE_COUNT == 357
    assert splits.num_classes == 3
    assert splits.train.sample_count == 60
    assert splits.train.features.min() >= 0.0
    assert splits.train.features.max() <= 1.0
    assert set(np.unique(splits.train.labels)) == {0, 1, 2}


def test_synthetic_rs130_classes_are_separable_above_chance():
    # A trivial nearest-class-mean classifier should beat chance, proving the
    # class-conditional signal exists without requiring high accuracy.
    splits = generate_synthetic_rs130(SyntheticRs130Config(train_size=300, test_size=150, seed=0))
    means = np.stack(
        [splits.train.features[splits.train.labels == c].mean(axis=0) for c in range(3)]
    )
    distances = ((splits.test.features[:, None, :] - means[None, :, :]) ** 2).sum(axis=2)
    predictions = distances.argmin(axis=1)
    accuracy = (predictions == splits.test.labels).mean()
    assert accuracy > 0.45  # chance is 1/3


def test_synthetic_rs130_deterministic():
    config = SyntheticRs130Config(train_size=20, test_size=10, seed=5)
    a = generate_synthetic_rs130(config)
    b = generate_synthetic_rs130(config)
    assert np.array_equal(a.train.features, b.train.features)


def test_reshape_to_grid_pads_to_19x19():
    features = np.random.default_rng(0).random((4, 357))
    grid = reshape_to_grid(features, grid_size=19)
    assert grid.shape == (4, 361)
    assert np.allclose(grid[:, :357], features)
    assert np.all(grid[:, 357:] == 0.0)
    single = reshape_to_grid(features[0], grid_size=19)
    assert single.shape == (1, 361)
    with pytest.raises(ValueError):
        reshape_to_grid(np.zeros((2, 400)), grid_size=19)


def test_synthetic_rs130_config_validation():
    with pytest.raises(ValueError):
        SyntheticRs130Config(train_size=0)
    with pytest.raises(ValueError):
        SyntheticRs130Config(signal_strength=0.0)
    with pytest.raises(ValueError):
        SyntheticRs130Config(noise_scale=0.0)


# --------------------------------------------------------------- registry
def test_registry_contains_paper_datasets():
    assert set(DATASET_REGISTRY) == {"mnist", "rs130"}
    info = DATASET_REGISTRY["mnist"]
    assert info.paper_train_size == 60000
    assert info.paper_test_size == 10000
    assert info.feature_count == 784
    assert DATASET_REGISTRY["rs130"].num_classes == 3


def test_load_dataset_and_summary():
    splits = load_dataset("mnist", train_size=30, test_size=10, seed=0)
    assert splits.train.sample_count == 30
    row = dataset_summary("mnist", splits)
    assert row["dataset"] == "MNIST"
    assert row["generated_training_size"] == 30
    assert row["paper_training_size"] == 60000
    rs = load_dataset("RS130", train_size=20, test_size=10)
    assert rs.train.feature_count == 357
    with pytest.raises(KeyError):
        load_dataset("cifar")
