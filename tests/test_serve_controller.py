"""Adaptive admission controller under a fake clock.

Every test drives :class:`LatencyController` (and its integration into
:class:`AdmissionController`) with an injected monotonic clock, so control
ticks fire exactly when the test says — no sleeps, no wall-clock flake.
The clock-discipline tests at the bottom pin the ``Job`` timestamp split
the module docstring promises: ``created`` is monotonic (the only clock
latency math touches), ``created_wall`` is wall time (journal records
only), and the two are never differenced against each other.
"""

import time

import pytest

from repro.api.protocol import EvalRequest
from repro.serve.admission import AdmissionController, Job, QueueFullError
from repro.serve.controller import ControllerConfig, LatencyController


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_controller(clock, initial_depth=64, workers=1, **config):
    return LatencyController(
        initial_depth=initial_depth,
        config=ControllerConfig(**config),
        workers=workers,
        clock=clock,
    )


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"target_p95": 0.0},
        {"target_p95": -1.0},
        {"tick_interval": 0.0},
        {"min_depth": 0},
        {"min_depth": 8, "max_depth": 4},
        {"increase_step": 0},
        {"decrease_factor": 0.0},
        {"decrease_factor": 1.0},
        {"band": 0.0},
        {"band": 1.5},
    ],
)
def test_config_rejects_invalid_tunables(kwargs):
    with pytest.raises(ValueError):
        ControllerConfig(**kwargs)


def test_controller_rejects_nonpositive_initial_depth():
    with pytest.raises(ValueError):
        LatencyController(initial_depth=0)


# ----------------------------------------------------------------------
# depth adaptation
# ----------------------------------------------------------------------
def test_depth_decreases_multiplicatively_when_p95_over_target():
    clock = FakeClock()
    ctl = make_controller(clock, target_p95=1.0, tick_interval=0.5, min_depth=2)
    assert ctl.effective_depth == 64
    clock.advance(1.0)
    ctl.maybe_tick(p95=2.0)  # 2x over target
    assert ctl.effective_depth == 32
    clock.advance(1.0)
    ctl.maybe_tick(p95=2.0)
    assert ctl.effective_depth == 16
    snapshot = ctl.snapshot()
    assert snapshot["decreases"] == 2
    assert snapshot["last_decision"] == "decrease"


def test_depth_never_shrinks_below_min_depth():
    clock = FakeClock()
    ctl = make_controller(clock, target_p95=1.0, min_depth=4)
    for _ in range(20):
        clock.advance(1.0)
        ctl.maybe_tick(p95=10.0)
    assert ctl.effective_depth == 4


def test_depth_increases_additively_under_pressure_when_below_band():
    clock = FakeClock()
    ctl = make_controller(
        clock, target_p95=1.0, increase_step=8, band=0.8, max_depth=100
    )
    ctl.observe_rejection()  # admission pressure since last tick
    clock.advance(1.0)
    ctl.maybe_tick(p95=0.5)  # well inside the band
    assert ctl.effective_depth == 72
    assert ctl.snapshot()["last_decision"] == "increase"


def test_queue_touching_the_bound_also_counts_as_pressure():
    clock = FakeClock()
    ctl = make_controller(clock, target_p95=1.0, initial_depth=16)
    ctl.observe_queue_depth(16)  # at the bound, nothing shed yet
    clock.advance(1.0)
    ctl.maybe_tick(p95=0.1)
    assert ctl.effective_depth == 24


def test_depth_never_grows_past_max_depth():
    clock = FakeClock()
    ctl = make_controller(
        clock, target_p95=1.0, initial_depth=60, max_depth=64, increase_step=8
    )
    for _ in range(5):
        ctl.observe_rejection()
        clock.advance(1.0)
        ctl.maybe_tick(p95=0.1)
    assert ctl.effective_depth == 64


def test_no_oscillation_on_steady_in_band_load():
    # A steady load with p95 inside the deadband and no admission pressure
    # must hold the depth tick after tick — the no-oscillation property.
    clock = FakeClock()
    ctl = make_controller(clock, target_p95=1.0, band=0.8)
    depths = []
    for _ in range(50):
        ctl.observe_completion()
        clock.advance(1.0)
        ctl.maybe_tick(p95=0.9)  # between band*target and target
        depths.append(ctl.effective_depth)
    assert set(depths) == {64}
    snapshot = ctl.snapshot()
    assert snapshot["increases"] == 0
    assert snapshot["decreases"] == 0
    assert snapshot["holds"] == 50


def test_in_band_pressure_alone_does_not_grow_depth():
    # Pressure with p95 in the deadband (band*target < p95 <= target) must
    # hold, not grow — growing there is what causes oscillation.
    clock = FakeClock()
    ctl = make_controller(clock, target_p95=1.0, band=0.8)
    ctl.observe_rejection()
    clock.advance(1.0)
    ctl.maybe_tick(p95=0.9)
    assert ctl.effective_depth == 64
    assert ctl.snapshot()["last_decision"] == "hold"


def test_no_tick_before_interval_elapses():
    clock = FakeClock()
    ctl = make_controller(clock, target_p95=1.0, tick_interval=0.5)
    clock.advance(0.4)
    assert not ctl.tick_due()
    ctl.maybe_tick(p95=10.0)  # early call must be a no-op
    assert ctl.effective_depth == 64
    assert ctl.snapshot()["ticks"] == 0


def test_none_target_freezes_depth_but_still_measures_drain():
    clock = FakeClock()
    ctl = LatencyController(initial_depth=2, clock=clock)  # default config
    for _ in range(10):
        ctl.observe_completion()
    clock.advance(2.0)
    ctl.maybe_tick(p95=99.0)
    assert ctl.effective_depth == 2  # frozen, even below default min_depth
    assert ctl.snapshot()["drain_rate_per_second"] == pytest.approx(5.0)


def test_missing_p95_holds():
    clock = FakeClock()
    ctl = make_controller(clock, target_p95=1.0)
    clock.advance(1.0)
    ctl.maybe_tick(p95=None)
    assert ctl.effective_depth == 64
    assert ctl.snapshot()["last_decision"] == "hold"


# ----------------------------------------------------------------------
# Retry-After
# ----------------------------------------------------------------------
def test_retry_after_tracks_measured_drain_rate():
    clock = FakeClock()
    ctl = make_controller(clock, target_p95=1.0)
    for _ in range(8):
        ctl.observe_completion()
    clock.advance(2.0)  # 8 completions / 2 s = 4 jobs/s
    ctl.maybe_tick(p95=0.5)
    assert ctl.retry_after(queue_depth=20, mean_latency=0.1) == pytest.approx(5.0)
    assert ctl.retry_after(queue_depth=400, mean_latency=0.1) == 60.0  # clamped
    assert ctl.retry_after(queue_depth=1, mean_latency=0.1) == 1.0  # clamped


def test_retry_after_falls_back_to_latency_heuristic_before_any_drain():
    ctl = LatencyController(initial_depth=64, workers=2)
    assert ctl.retry_after(queue_depth=10, mean_latency=1.0) == pytest.approx(5.0)
    # No latency data either: one second per queued job, one worker's worth.
    assert ctl.retry_after(queue_depth=4, mean_latency=None) == pytest.approx(2.0)


# ----------------------------------------------------------------------
# integration with AdmissionController
# ----------------------------------------------------------------------
def make_request(tiny_context, seed=0):
    return EvalRequest(
        model=tiny_context.result("tea").model,
        dataset=tiny_context.evaluation_dataset(),
        copy_levels=(1,),
        spf_levels=(1,),
        seed=seed,
    )


def test_admission_sheds_at_adapted_depth(tiny_context):
    clock = FakeClock()
    admission = AdmissionController(
        max_depth=4,
        controller_config=ControllerConfig(target_p95=0.001, min_depth=2),
        clock=clock,
    )
    request = make_request(tiny_context)
    for _ in range(4):
        admission.submit(Job(request=request))
    # Feed a latency far over target into the window, then tick: the
    # effective depth halves to 2, so the full queue (4 deep) sheds the
    # next arrival at a depth the static bound of 4 would have held at.
    admission.latencies.record(10.0)
    clock.advance(1.0)
    with pytest.raises(QueueFullError) as excinfo:
        admission.submit(Job(request=request))
    assert admission.controller.effective_depth == 2
    assert excinfo.value.retry_after >= 1.0
    snapshot = admission.snapshot()
    assert snapshot["effective_depth"] == 2
    assert snapshot["received"] == snapshot["admitted"] + snapshot["rejected"]


def test_static_admission_keeps_exact_legacy_shedding(tiny_context):
    # No controller config: the bound stays max_depth forever — the
    # contract the deterministic overload tests (and PR-4 clients) rely on.
    admission = AdmissionController(max_depth=2)
    request = make_request(tiny_context)
    admission.submit(Job(request=request))
    admission.submit(Job(request=request))
    with pytest.raises(QueueFullError):
        admission.submit(Job(request=request))
    assert admission.controller.effective_depth == 2


# ----------------------------------------------------------------------
# clock discipline (the monotonic/wall bugfix pin)
# ----------------------------------------------------------------------
def test_job_created_is_monotonic_and_created_wall_is_wall_time():
    mono_before = time.monotonic()
    wall_before = time.time()
    job = Job(request=None)
    mono_after = time.monotonic()
    wall_after = time.time()
    assert mono_before <= job.created <= mono_after
    assert wall_before <= job.created_wall <= wall_after


def test_job_latency_never_mixes_clock_epochs(monkeypatch):
    # Pin the two timestamps to wildly different epochs: latency must come
    # out of the monotonic pair alone.  If the latency path differenced
    # created against wall time (or created_wall against monotonic), the
    # result would be off by ~2e9 seconds — unmistakable.
    import repro.serve.admission as admission_module

    job = Job(request=None, created=50.0, created_wall=2_000_000_000.0)
    monkeypatch.setattr(admission_module.time, "monotonic", lambda: 51.5)
    assert job.latency == pytest.approx(1.5)
