"""Tests for the experiment drivers (table/figure regeneration).

These run on the tiny shared context so they exercise the full code path of
every driver quickly; the paper-shape assertions live in the benchmarks.
"""

import numpy as np
import pytest

from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.runner import train_method_pair
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2a, run_table2b
from repro.experiments.table3 import run_table3


def test_context_caches_results(tiny_context):
    first = tiny_context.result("tea")
    second = tiny_context.result("tea")
    assert first is second
    with pytest.raises(KeyError):
        tiny_context.result("unknown")
    assert tiny_context.config.index == 1
    assert tiny_context.evaluation_dataset().sample_count <= tiny_context.eval_samples


def test_train_method_pair_returns_both(tiny_context):
    tea, biased = train_method_pair(tiny_context)
    assert tea.method == "tea"
    assert biased.method == "biased"


def test_table1_rows_and_formatting():
    report = run_table1(train_size=30, test_size=10, seed=0)
    assert len(report["rows"]) == 2
    names = {row["dataset"] for row in report["rows"]}
    assert names == {"MNIST", "RS130"}
    assert "Table 1" in report["table"]
    mnist_row = next(r for r in report["rows"] if r["dataset"] == "MNIST")
    assert mnist_row["generated_training_size"] == 30
    assert mnist_row["feature_count"] == 784


def test_figure5_histograms(tiny_context):
    report = run_figure5(tiny_context, bins=10)
    for method in ("tea", "l1", "biased"):
        entry = report[method]
        assert len(entry["histogram_counts"]) == 10
        assert len(entry["bin_edges"]) == 11
        assert 0.0 <= entry["pole_fraction"] <= 1.0
        assert 0.0 <= entry["float_accuracy"] <= 1.0


def test_figure4_deviation_report(tiny_context):
    report = run_figure4(tiny_context)
    assert set(report["tea"]) == {
        "zero_fraction",
        "above_half_fraction",
        "mean_deviation",
        "max_deviation",
    }
    assert report["paper"]["tea_above_half_fraction"] == pytest.approx(0.2401)


def test_figure7_and_8_surfaces(tiny_context):
    report7 = run_figure7(tiny_context, copy_levels=(1, 2), spf_levels=(1, 2))
    surface = np.asarray(report7["tea"]["surface"])
    assert surface.shape == (2, 2)
    assert np.all(surface >= 0.0) and np.all(surface <= 1.0)
    report8 = run_figure8(
        tiny_context, copy_levels=(1, 2), spf_levels=(1, 2), figure7_report=report7
    )
    boost = np.asarray(report8["boost"])
    assert boost.shape == (2, 2)
    assert report8["max_boost"] == pytest.approx(boost.max())
    assert report8["max_boost_at"]["copies"] in (1, 2)


def test_table2a_and_2b_reports(tiny_context):
    report_a = run_table2a(
        tiny_context, copy_levels=(1, 2, 4), biased_copy_levels=(1, 2), spf=1
    )
    assert "Table 2(a)" in report_a["table"]
    assert 0.0 <= report_a["average_saved_fraction"] <= 1.0
    assert len(report_a["rows"]) == 3
    report_b = run_table2b(
        tiny_context, spf_levels=(1, 2, 4), biased_spf_levels=(1, 2), copies=1
    )
    assert "Table 2(b)" in report_b["table"]
    assert report_b["max_speedup"] >= 1.0


def test_table3_structural_rows_without_training():
    report = run_table3(testbenches=(1, 2, 3, 4, 5), measure=())
    assert len(report["rows"]) == 5
    assert report["rows"][2]["cores_per_layer"] == "49~9~4"
    assert all(row["measured_float_accuracy"] is None for row in report["rows"])
    assert "Table 3" in report["table"]


def test_table3_measures_requested_bench():
    report = run_table3(
        testbenches=(1,),
        measure=(1,),
        context_overrides={"train_size": 120, "test_size": 50, "epochs": 1},
    )
    accuracy = report["rows"][0]["measured_float_accuracy"]
    assert accuracy is not None and 0.0 <= accuracy <= 1.0
