"""Tests for the spike encoders and the spike-count decoder."""

import numpy as np
import pytest

from repro.encoding.decoder import SpikeCountDecoder
from repro.encoding.population import PopulationEncoder
from repro.encoding.rank import RankOrderEncoder
from repro.encoding.rate import RateEncoder
from repro.encoding.stochastic import StochasticEncoder
from repro.encoding.time_to_spike import TimeToSpikeEncoder


# --------------------------------------------------------------- stochastic
def test_stochastic_encoder_shape_and_rate():
    encoder = StochasticEncoder(spikes_per_frame=8)
    values = np.full((50, 20), 0.3)
    frames = encoder.encode(values, rng=0)
    assert frames.shape == (8, 50, 20)
    assert frames.dtype == np.uint8
    assert abs(frames.mean() - 0.3) < 0.02
    assert np.allclose(encoder.expected_rate(values), 0.3 * 8)


def test_stochastic_encoder_extremes_are_deterministic():
    encoder = StochasticEncoder(spikes_per_frame=4)
    values = np.array([[0.0, 1.0]])
    frames = encoder.encode(values, rng=0)
    assert np.all(frames[:, 0, 0] == 0)
    assert np.all(frames[:, 0, 1] == 1)


def test_stochastic_encoder_validation():
    with pytest.raises(ValueError):
        StochasticEncoder(0)
    encoder = StochasticEncoder(1)
    with pytest.raises(ValueError):
        encoder.encode(np.array([0.5, 0.5]))  # not 2-D
    with pytest.raises(ValueError):
        encoder.encode(np.array([[1.5]]))


# --------------------------------------------------------------- rate
def test_rate_encoder_exact_counts_and_roundtrip():
    encoder = RateEncoder(window=8)
    values = np.array([[0.0, 0.25, 0.5, 1.0]])
    frames = encoder.encode(values)
    counts = frames.sum(axis=0)
    assert list(counts[0]) == [0, 2, 4, 8]
    assert np.allclose(encoder.decode(frames), values)


def test_rate_encoder_spreads_spikes_evenly():
    encoder = RateEncoder(window=8)
    frames = encoder.encode(np.array([[0.5]]))
    ticks = np.nonzero(frames[:, 0, 0])[0]
    assert len(ticks) == 4
    gaps = np.diff(ticks)
    assert gaps.max() - gaps.min() <= 1


def test_rate_encoder_validation():
    with pytest.raises(ValueError):
        RateEncoder(0)
    encoder = RateEncoder(4)
    with pytest.raises(ValueError):
        encoder.encode(np.array([[2.0]]))
    with pytest.raises(ValueError):
        encoder.decode(np.zeros((3, 1, 1)))


# --------------------------------------------------------------- population
def test_population_encoder_thermometer_code():
    encoder = PopulationEncoder(population=4)
    bits = encoder.encode(np.array([[0.0, 0.5, 1.0]]))
    assert bits.shape == (1, 12)
    assert list(bits[0, :4]) == [0, 0, 0, 0]
    assert list(bits[0, 4:8]) == [1, 1, 0, 0]
    assert list(bits[0, 8:]) == [1, 1, 1, 1]
    decoded = encoder.decode(bits, feature_count=3)
    assert np.allclose(decoded, [[0.0, 0.5, 1.0]])


def test_population_encoder_validation():
    with pytest.raises(ValueError):
        PopulationEncoder(0)
    encoder = PopulationEncoder(4)
    with pytest.raises(ValueError):
        encoder.decode(np.zeros((1, 7)), feature_count=2)


# --------------------------------------------------------------- time to spike
def test_time_to_spike_larger_values_spike_earlier():
    encoder = TimeToSpikeEncoder(window=8)
    frames = encoder.encode(np.array([[1.0, 0.5, 0.1]]))
    assert frames.sum() == 3
    first_spike = np.argmax(frames[:, 0, :], axis=0)
    assert first_spike[0] < first_spike[1] < first_spike[2]


def test_time_to_spike_zero_behaviour_and_decode():
    encoder = TimeToSpikeEncoder(window=8, spike_for_zero=False)
    frames = encoder.encode(np.array([[0.0, 1.0]]))
    assert frames[:, 0, 0].sum() == 0
    decoded = encoder.decode(frames)
    assert decoded[0, 0] == 0.0
    assert decoded[0, 1] == 1.0


def test_time_to_spike_validation():
    with pytest.raises(ValueError):
        TimeToSpikeEncoder(0)
    with pytest.raises(ValueError):
        TimeToSpikeEncoder(4).decode(np.zeros((3, 1, 1)))


# --------------------------------------------------------------- rank order
def test_rank_order_one_spike_per_feature_in_order():
    encoder = RankOrderEncoder(max_ticks=4)
    values = np.array([[0.9, 0.1, 0.5, 0.7]])
    frames = encoder.encode(values)
    assert frames.sum() == 4
    ranks = encoder.decode_ranks(frames)
    # Larger values must have earlier (smaller) spike ticks.
    assert ranks[0, 0] <= ranks[0, 3] <= ranks[0, 2] <= ranks[0, 1]


def test_rank_order_validation():
    with pytest.raises(ValueError):
        RankOrderEncoder(0)
    with pytest.raises(ValueError):
        RankOrderEncoder(4).encode(np.zeros(3))


# --------------------------------------------------------------- decoder
def test_spike_count_decoder_scores_and_prediction():
    decoder = SpikeCountDecoder(class_assignment=np.array([0, 1, 0, 1]), num_classes=2)
    counts = np.array([[4, 1, 2, 1], [0, 3, 0, 5]])
    scores = decoder.class_scores(counts)
    assert np.allclose(scores, [[3.0, 1.0], [0.0, 4.0]])
    assert list(decoder.predict(counts)) == [0, 1]
    single = decoder.class_scores(np.array([2, 0, 2, 0]))
    assert np.allclose(single, [2.0, 0.0])


def test_spike_count_decoder_validation():
    with pytest.raises(ValueError):
        SpikeCountDecoder(np.array([0, 1]), num_classes=1)
    with pytest.raises(ValueError):
        SpikeCountDecoder(np.array([0, 2]), num_classes=2)
    with pytest.raises(ValueError):
        SpikeCountDecoder(np.array([0, 0]), num_classes=2)  # class 1 empty
    decoder = SpikeCountDecoder(np.array([0, 1]), num_classes=2)
    with pytest.raises(ValueError):
        decoder.class_scores(np.zeros((2, 3)))
