"""Tests for the Sequential container and the Trainer."""

import numpy as np
import pytest

from repro.nn.activations import Sigmoid
from repro.nn.layers import Dense
from repro.nn.network import Sequential
from repro.nn.optim import Adam
from repro.nn.regularizers import NullRegularizer
from repro.nn.trainer import Trainer
from repro.core.penalties import L2Penalty


def two_moons_like(count=200, rng_seed=0):
    """A simple linearly-separable-ish 2-class problem."""
    rng = np.random.default_rng(rng_seed)
    features = rng.normal(size=(count, 4))
    labels = (features[:, 0] + features[:, 1] > 0).astype(int)
    return features, labels


def test_sequential_params_namespaced_and_state_dict_roundtrip():
    network = Sequential([Dense(4, 3, rng=0), Dense(3, 2, rng=1)])
    params = network.params()
    assert set(params) == {
        "layer0.weights",
        "layer0.bias",
        "layer1.weights",
        "layer1.bias",
    }
    state = network.state_dict()
    for array in network.params().values():
        array += 1.0
    network.load_state_dict(state)
    for name, array in network.params().items():
        assert np.array_equal(array, state[name])


def test_load_state_dict_validation():
    network = Sequential([Dense(4, 3, rng=0)])
    with pytest.raises(KeyError):
        network.load_state_dict({})
    state = network.state_dict()
    state["layer0.weights"] = np.zeros((2, 2))
    with pytest.raises(ValueError):
        network.load_state_dict(state)


def test_output_dim_requires_layers():
    with pytest.raises(ValueError):
        Sequential([]).output_dim


def test_trainer_learns_simple_problem():
    features, labels = two_moons_like()
    network = Sequential([Dense(4, 8, activation=Sigmoid(), rng=0), Dense(8, 2, rng=1)])
    trainer = Trainer(network, optimizer=Adam(learning_rate=0.05))
    history = trainer.fit(features, labels, epochs=15, batch_size=16, rng=0)
    assert history.epochs == 15
    assert history.train_accuracy[-1] > 0.9
    assert history.train_loss[-1] < history.train_loss[0]


def test_trainer_validation_accuracy_recorded():
    features, labels = two_moons_like()
    network = Sequential([Dense(4, 2, rng=0)])
    trainer = Trainer(network)
    history = trainer.fit(
        features[:150],
        labels[:150],
        epochs=3,
        validation_data=(features[150:], labels[150:]),
        rng=0,
    )
    assert len(history.validation_accuracy) == 3
    assert 0.0 <= history.best_validation_accuracy() <= 1.0


def test_trainer_penalty_changes_weights():
    features, labels = two_moons_like()

    def train(coefficient):
        network = Sequential([Dense(4, 2, rng=0)])
        trainer = Trainer(
            network,
            regularizer=L2Penalty(),
            penalty_coefficient=coefficient,
        )
        trainer.fit(features, labels, epochs=5, rng=0)
        return np.abs(network.params()["layer0.weights"]).mean()

    assert train(1.0) < train(0.0)


def test_trainer_penalty_value_reported_in_history():
    features, labels = two_moons_like()
    network = Sequential([Dense(4, 2, rng=0)])
    trainer = Trainer(network, regularizer=L2Penalty(), penalty_coefficient=0.1)
    history = trainer.fit(features, labels, epochs=2, rng=0)
    assert all(value > 0 for value in history.penalty)


def test_trainer_clipping_keeps_weights_in_range():
    features, labels = two_moons_like()
    network = Sequential([Dense(4, 2, rng=0)])
    trainer = Trainer(
        network, optimizer=Adam(learning_rate=0.5), clip_probabilities=(-0.2, 0.2)
    )
    trainer.fit(features, labels, epochs=3, rng=0)
    weights = network.penalized_params()["layer0.weights"]
    assert np.all(weights >= -0.2) and np.all(weights <= 0.2)


def test_trainer_input_validation():
    network = Sequential([Dense(4, 2, rng=0)])
    trainer = Trainer(network)
    with pytest.raises(ValueError):
        trainer.fit(np.zeros((5, 4)), np.zeros(4), epochs=1)
    with pytest.raises(ValueError):
        trainer.fit(np.zeros((5, 4)), np.zeros(5), epochs=0)
    with pytest.raises(ValueError):
        trainer.fit(np.zeros((5, 4)), np.zeros(5), epochs=1, batch_size=0)
    with pytest.raises(ValueError):
        Trainer(network, penalty_coefficient=-1.0)


def test_trainer_callback_invoked_per_epoch():
    features, labels = two_moons_like(count=50)
    network = Sequential([Dense(4, 2, rng=0)])
    seen = []
    Trainer(network).fit(
        features, labels, epochs=4, rng=0, callback=lambda e, m: seen.append(e)
    )
    assert seen == [0, 1, 2, 3]


def test_null_regularizer_is_zero():
    reg = NullRegularizer()
    params = {"w": np.ones((2, 2))}
    assert reg.penalty(params) == 0.0
    assert np.all(reg.gradient(params)["w"] == 0.0)
