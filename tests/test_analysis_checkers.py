"""Fixture pairs for every replint rule.

Each rule gets (at least) one clean fixture that must produce no findings
and one seeded-violation fixture that must produce findings with the right
rule id on the right line.  File-scoped rules run directly against
:class:`SourceFile` objects; cross-module rules run against miniature
project trees laid out under ``tmp_path`` with the same relative paths the
real repo uses.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.checkers.cap_exhaustive import CapExhaustiveChecker
from repro.analysis.checkers.dtype_explicit import DtypeExplicitChecker
from repro.analysis.checkers.frozen_mut import FrozenMutChecker
from repro.analysis.checkers.lock_guard import LockGuardChecker
from repro.analysis.checkers.req_sync import ReqSyncChecker
from repro.analysis.checkers.rng_seed import RngSeedChecker
from repro.analysis.project import Project, SourceFile


def line_of(text: str, needle: str) -> int:
    """1-based line number of the first line containing ``needle``."""
    for lineno, line in enumerate(text.splitlines(), start=1):
        if needle in line:
            return lineno
    raise AssertionError(f"fixture does not contain {needle!r}")


def source(path: str, text: str) -> SourceFile:
    return SourceFile(path, textwrap.dedent(text))


def write_tree(root: Path, files: dict) -> Project:
    """Lay ``{relpath: text}`` out under ``root`` and wrap it as a Project."""
    for relpath, text in files.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text), encoding="utf-8")
    return Project(root, ["src"])


# ----------------------------------------------------------------------
# RNG-SEED
# ----------------------------------------------------------------------
class TestRngSeed:
    checker = RngSeedChecker()

    def test_injected_generator_is_clean(self):
        clean = source(
            "src/repro/core/mod.py",
            """\
            import numpy as np

            def draw(rng):
                return rng.integers(0, 2, size=4, dtype=np.int64)
            """,
        )
        assert self.checker.check(clean) == []

    def test_module_state_and_stdlib_random_flagged(self):
        text = """\
        import numpy as np
        import random

        def draw():
            a = np.random.choice([0, 1])
            b = random.random()
            return a + b
        """
        bad = source("src/repro/core/mod.py", text)
        findings = self.checker.check(bad)
        assert {f.rule for f in findings} == {"RNG-SEED"}
        lines = sorted(f.line for f in findings)
        expected = sorted(
            [
                line_of(bad.text, "import random"),
                line_of(bad.text, "np.random.choice"),
                line_of(bad.text, "random.random()"),
            ]
        )
        assert lines == expected

    def test_aliased_numpy_random_flagged(self):
        bad = source(
            "src/repro/core/mod.py",
            """\
            from numpy.random import default_rng

            def fresh():
                return default_rng(0)
            """,
        )
        findings = self.checker.check(bad)
        assert len(findings) == 1
        assert "numpy.random.default_rng" in findings[0].message

    def test_sanctioned_plumbing_modules_exempt(self):
        assert not self.checker.applies_to("src/repro/utils/rng.py")
        assert not self.checker.applies_to("src/repro/truenorth/prng.py")
        assert self.checker.applies_to("src/repro/core/mod.py")
        assert not self.checker.applies_to("tests/test_core_model.py")


# ----------------------------------------------------------------------
# DTYPE-EXPLICIT
# ----------------------------------------------------------------------
class TestDtypeExplicit:
    checker = DtypeExplicitChecker()

    def test_explicit_numpy_dtypes_are_clean(self):
        clean = source(
            "src/repro/truenorth/mod.py",
            """\
            import numpy as np

            def alloc(n, x):
                counts = np.zeros(n, dtype=np.int64)
                acc = np.full((n, n), 0.0, dtype=np.float64)
                return counts, acc, x.astype(np.float64)
            """,
        )
        assert self.checker.check(clean) == []

    def test_builtin_and_defaulted_dtypes_flagged(self):
        text = """\
        import numpy as np

        def alloc(n, x):
            a = np.zeros(n)
            b = np.zeros(n, dtype=float)
            c = np.full((2, 2), 0, int)
            d = x.astype(float)
            return a, b, c, d
        """
        bad = source("src/repro/eval/mod.py", text)
        findings = self.checker.check(bad)
        assert {f.rule for f in findings} == {"DTYPE-EXPLICIT"}
        by_line = {f.line: f.message for f in findings}
        assert "defaults" in by_line[line_of(bad.text, "np.zeros(n)")]
        assert "np.float64" in by_line[line_of(bad.text, "dtype=float")]
        assert "positional" in by_line[line_of(bad.text, "np.full")]
        assert ".astype(float)" in by_line[line_of(bad.text, "x.astype")]
        assert len(findings) == 4

    def test_inference_calls_exempt(self):
        clean = source(
            "src/repro/truenorth/mod.py",
            """\
            import numpy as np

            def mirror(x):
                return np.zeros_like(x), np.array([1, 2])
            """,
        )
        assert self.checker.check(clean) == []

    def test_only_numeric_core_paths_apply(self):
        assert self.checker.applies_to("src/repro/truenorth/chip.py")
        assert self.checker.applies_to("src/repro/eval/engine.py")
        assert not self.checker.applies_to("src/repro/core/model.py")


# ----------------------------------------------------------------------
# FROZEN-MUT
# ----------------------------------------------------------------------
class TestFrozenMut:
    checker = FrozenMutChecker()

    def test_post_init_and_private_memo_are_clean(self):
        clean = source(
            "src/repro/api/mod.py",
            """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Req:
                label: str

                def __post_init__(self):
                    object.__setattr__(self, "label", self.label.strip())

                def _memoize(self, value):
                    object.__setattr__(self, "_memo", value)
            """,
        )
        assert self.checker.check(clean) == []

    def test_unsanctioned_setattr_shapes_flagged(self):
        text = """\
        class Req:
            def rename(self, label):
                object.__setattr__(self, "label", label)

            def poke(self, other):
                object.__setattr__(other, "_x", 1)

            def dynamic(self, name):
                object.__setattr__(self, name, 1)
        """
        bad = source("src/repro/api/mod.py", text)
        findings = self.checker.check(bad)
        assert {f.rule for f in findings} == {"FROZEN-MUT"}
        by_line = {f.line: f.message for f in findings}
        assert "outside" in by_line[line_of(bad.text, '"label", label')]
        assert "not self" in by_line[line_of(bad.text, "__setattr__(other")]
        assert "computed" in by_line[line_of(bad.text, "__setattr__(self, name")]
        assert len(findings) == 3


# ----------------------------------------------------------------------
# LOCK-GUARD
# ----------------------------------------------------------------------
class TestLockGuard:
    checker = LockGuardChecker()

    def test_disciplined_class_is_clean(self):
        clean = source(
            "src/repro/serve/mod.py",
            """\
            import threading

            class Queue:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition(self._lock)
                    self._items = []  # guarded-by: _lock

                def put(self, item):
                    with self._cond:
                        self._items.append(item)
                        self._cond.notify()

                def drain(self):
                    with self._lock:
                        items, self._items = self._items, []
                    return items
            """,
        )
        assert self.checker.check(clean) == []

    def test_unguarded_access_flagged(self):
        text = """\
        import threading

        class Queue:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []  # guarded-by: _lock

            def peek(self):
                return list(self._items)
        """
        bad = source("src/repro/serve/mod.py", text)
        findings = self.checker.check(bad)
        assert len(findings) == 1
        assert findings[0].rule == "LOCK-GUARD"
        assert findings[0].line == line_of(bad.text, "list(self._items)")
        assert "outside" in findings[0].message

    def test_sibling_call_deadlock_flagged(self):
        # The PR-4 regression shape: the admission path computed its retry
        # hint via a method that re-acquired the queue lock it already held.
        text = """\
        import threading

        class Controller:
            def __init__(self):
                self._lock = threading.Lock()
                self._jobs = []  # guarded-by: _lock

            def submit(self, job):
                with self._lock:
                    self._jobs.append(job)
                    return self.retry_after()

            def retry_after(self):
                with self._lock:
                    return len(self._jobs)
        """
        bad = source("src/repro/serve/mod.py", text)
        findings = self.checker.check(bad)
        assert len(findings) == 1
        assert findings[0].line == line_of(bad.text, "return self.retry_after()")
        assert "deadlock" in findings[0].message

    def test_direct_reacquire_flagged_but_rlock_exempt(self):
        bad = source(
            "src/repro/serve/mod.py",
            """\
            import threading

            class Plain:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: _lock

                def bump(self):
                    with self._lock:
                        with self._lock:
                            self._n += 1
            """,
        )
        findings = self.checker.check(bad)
        assert len(findings) == 1
        assert "re-acquires" in findings[0].message

        reentrant = source(
            "src/repro/serve/mod.py",
            """\
            import threading

            class Rec:
                def __init__(self):
                    self._lock = threading.RLock()
                    self._n = 0  # guarded-by: _lock

                def bump(self):
                    with self._lock:
                        with self._lock:
                            self._n += 1
            """,
        )
        assert self.checker.check(reentrant) == []

    def test_broken_annotations_flagged(self):
        text = """\
        import threading

        class Odd:
            def __init__(self):
                self._lock = threading.Lock()
                # guarded-by: _lock
                self._data = {}  # guarded-by: _missing
        """
        bad = source("src/repro/serve/mod.py", text)
        findings = self.checker.check(bad)
        messages = sorted(f.message for f in findings)
        assert len(findings) == 2
        assert any("declares nothing" in m for m in messages)
        assert any("no such threading lock" in m for m in messages)


# ----------------------------------------------------------------------
# REQ-SYNC (cross-module, miniature tree)
# ----------------------------------------------------------------------
PROTOCOL_OK = """\
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class EvalRequest:
        model: str
        copy_levels: tuple

        @property
        def max_copies(self):
            return max(self.copy_levels)
"""

CODEC_OK = """\
    from dataclasses import dataclass

    @dataclass
    class WireRequest:
        model: str
        copy_levels: tuple

    def encode_request(request):
        return {"model": request.model, "copy_levels": list(request.copy_levels)}

    def decode_request(payload):
        model = payload["model"]
        copies = payload["copy_levels"]
        return WireRequest(model=model, copy_levels=tuple(copies))
"""

CLIENT_OK = """\
    class ServeClient:
        def evaluate(self, model, copy_levels=(1,)):
            return {"model": model, "copy_levels": list(copy_levels)}
"""

SESSION_OK = """\
    class Session:
        def _coalesce_key(self, request):
            return (request.model, request.max_copies)

        def select_backend(self, request):
            return "reference"
"""


class TestReqSync:
    checker = ReqSyncChecker()

    def test_fully_threaded_field_set_is_clean(self, tmp_path):
        project = write_tree(
            tmp_path,
            {
                "src/repro/api/protocol.py": PROTOCOL_OK,
                "src/repro/api/session.py": SESSION_OK,
                "src/repro/serve/codec.py": CODEC_OK,
                "src/repro/serve/client.py": CLIENT_OK,
            },
        )
        # The coalescing key covers copy_levels only *through* the
        # max_copies property — derived coverage, no alias table.
        assert self.checker.check(project) == []

    def test_new_field_missing_everywhere_is_flagged_per_site(self, tmp_path):
        protocol = PROTOCOL_OK.replace(
            "model: str", "model: str\n        seed: int"
        )
        project = write_tree(
            tmp_path,
            {
                "src/repro/api/protocol.py": protocol,
                "src/repro/api/session.py": SESSION_OK,
                "src/repro/serve/codec.py": CODEC_OK,
                "src/repro/serve/client.py": CLIENT_OK,
            },
        )
        findings = self.checker.check(project)
        assert {f.rule for f in findings} == {"REQ-SYNC"}
        assert all("'seed'" in f.message for f in findings)
        # One finding per unsynced site: WireRequest, encode, decode,
        # client signature, coalescing key.
        assert len(findings) == 5
        assert {f.path for f in findings} == {
            "src/repro/api/session.py",
            "src/repro/serve/codec.py",
            "src/repro/serve/client.py",
        }

    def test_missing_dependency_module_is_one_finding(self, tmp_path):
        project = write_tree(
            tmp_path, {"src/repro/api/protocol.py": PROTOCOL_OK}
        )
        findings = self.checker.check(project)
        assert findings
        assert all("not found" in f.message for f in findings)


# ----------------------------------------------------------------------
# CAP-EXHAUSTIVE (cross-module, miniature tree)
# ----------------------------------------------------------------------
CAP_PROTOCOL_OK = """\
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class BackendCapabilities:
        cycle_accurate: bool
        board_mesh: bool

    @dataclass(frozen=True)
    class EvalRequest:
        model: str
        router_delay: int
        link_delay: int

        @property
        def needs_cycle_accuracy(self):
            return self.router_delay > 0

        @property
        def needs_board_mesh(self):
            return self.link_delay > 0
"""

CAP_BACKENDS_OK = """\
    class UnsupportedRequestError(RuntimeError):
        pass

    def _check_capabilities(request, caps):
        if request.needs_cycle_accuracy and not caps.cycle_accurate:
            raise UnsupportedRequestError("request needs the chip backend")
        if request.needs_board_mesh and not caps.board_mesh:
            raise UnsupportedRequestError("request needs the board backend")
"""

CAP_SESSION_OK = """\
    class Session:
        def select_backend(self, request):
            if request.needs_board_mesh:
                return "board"
            if request.needs_cycle_accuracy:
                return "chip"
            return "reference"

        def _coalesce_key(self, request):
            return (request.model, request.router_delay, request.link_delay)
"""


class TestCapExhaustive:
    checker = CapExhaustiveChecker()

    def test_gated_and_routed_field_is_clean(self, tmp_path):
        project = write_tree(
            tmp_path,
            {
                "src/repro/api/protocol.py": CAP_PROTOCOL_OK,
                "src/repro/api/backends.py": CAP_BACKENDS_OK,
                "src/repro/api/session.py": CAP_SESSION_OK,
            },
        )
        assert self.checker.check(project) == []

    def test_missing_gating_property_is_flagged(self, tmp_path):
        protocol = CAP_PROTOCOL_OK.replace("needs_board_mesh", "renamed_away")
        project = write_tree(
            tmp_path,
            {
                "src/repro/api/protocol.py": protocol,
                "src/repro/api/backends.py": CAP_BACKENDS_OK,
                "src/repro/api/session.py": CAP_SESSION_OK,
            },
        )
        findings = self.checker.check(project)
        assert len(findings) == 1
        assert "needs_board_mesh" in findings[0].message

    def test_typod_capability_makes_guard_dead(self, tmp_path):
        backends = CAP_BACKENDS_OK.replace(
            "caps.cycle_accurate", "caps.cycle_acurate"
        )
        project = write_tree(
            tmp_path,
            {
                "src/repro/api/protocol.py": CAP_PROTOCOL_OK,
                "src/repro/api/backends.py": backends,
                "src/repro/api/session.py": CAP_SESSION_OK,
            },
        )
        findings = self.checker.check(project)
        assert {f.rule for f in findings} == {"CAP-EXHAUSTIVE"}
        # Both the typo itself and the consequently-ungated field.
        assert any("cycle_acurate" in f.message for f in findings)
        assert any("'router_delay'" in f.message for f in findings)

    def test_selector_blind_to_gated_field_is_flagged(self, tmp_path):
        session = """\
            class Session:
                def select_backend(self, request):
                    if request.needs_board_mesh:
                        return "board"
                    return "reference"

                def _coalesce_key(self, request):
                    return (request.model, request.router_delay, request.link_delay)
        """
        project = write_tree(
            tmp_path,
            {
                "src/repro/api/protocol.py": CAP_PROTOCOL_OK,
                "src/repro/api/backends.py": CAP_BACKENDS_OK,
                "src/repro/api/session.py": session,
            },
        )
        findings = self.checker.check(project)
        assert len(findings) == 1
        assert findings[0].path == "src/repro/api/session.py"
        assert "'router_delay'" in findings[0].message
        assert "select_backend" in findings[0].message

    def test_coalescer_blind_to_gated_field_is_flagged(self, tmp_path):
        session = CAP_SESSION_OK.replace(
            "return (request.model, request.router_delay, request.link_delay)",
            "return (request.model, request.link_delay)",
        )
        project = write_tree(
            tmp_path,
            {
                "src/repro/api/protocol.py": CAP_PROTOCOL_OK,
                "src/repro/api/backends.py": CAP_BACKENDS_OK,
                "src/repro/api/session.py": session,
            },
        )
        findings = self.checker.check(project)
        assert len(findings) == 1
        assert findings[0].path == "src/repro/api/session.py"
        assert "'router_delay'" in findings[0].message
        assert "_coalesce_key" in findings[0].message

    def test_guard_without_raise_does_not_count(self, tmp_path):
        backends = CAP_BACKENDS_OK.replace(
            'raise UnsupportedRequestError("request needs the chip backend")',
            "return False",
        )
        project = write_tree(
            tmp_path,
            {
                "src/repro/api/protocol.py": CAP_PROTOCOL_OK,
                "src/repro/api/backends.py": backends,
                "src/repro/api/session.py": CAP_SESSION_OK,
            },
        )
        findings = self.checker.check(project)
        assert len(findings) == 1
        assert "'router_delay'" in findings[0].message
        assert "silently wrong" in findings[0].message
