"""Tests for the LFSR pseudo-random number generator."""

import numpy as np
import pytest

from repro.truenorth.prng import LfsrPrng


def test_deterministic_given_seed():
    a = LfsrPrng(seed=1234)
    b = LfsrPrng(seed=1234)
    assert [a.next_bit() for _ in range(64)] == [b.next_bit() for _ in range(64)]


def test_different_seeds_differ():
    a = LfsrPrng(seed=1)
    b = LfsrPrng(seed=2)
    assert [a.next_bit() for _ in range(64)] != [b.next_bit() for _ in range(64)]


def test_zero_seed_remapped():
    prng = LfsrPrng(seed=0)
    assert prng.state != 0
    # Still produces bits without getting stuck.
    bits = [prng.next_bit() for _ in range(32)]
    assert set(bits) <= {0, 1}


def test_reset_restores_stream():
    prng = LfsrPrng(seed=99)
    first = [prng.next_bit() for _ in range(32)]
    prng.reset()
    second = [prng.next_bit() for _ in range(32)]
    assert first == second


def test_state_never_all_zero_over_long_run():
    prng = LfsrPrng(seed=0xBEEF)
    for _ in range(5000):
        prng.next_bit()
        assert prng.state != 0


def test_next_uint_range_and_bits_validation():
    prng = LfsrPrng(seed=5)
    values = [prng.next_uint(8) for _ in range(100)]
    assert all(0 <= v < 256 for v in values)
    with pytest.raises(ValueError):
        prng.next_uint(0)
    with pytest.raises(ValueError):
        prng.next_uint(40)


def test_next_uniform_in_unit_interval():
    prng = LfsrPrng(seed=7)
    values = [prng.next_uniform() for _ in range(200)]
    assert all(0.0 <= v < 1.0 for v in values)
    # A maximal-length LFSR stream should not be constant.
    assert len(set(values)) > 50


def test_bernoulli_extremes():
    prng = LfsrPrng(seed=3)
    assert not any(prng.bernoulli(0.0) for _ in range(50))
    assert all(prng.bernoulli(1.0) for _ in range(50))
    with pytest.raises(ValueError):
        prng.bernoulli(1.5)


def test_bernoulli_array_shape_and_rate():
    prng = LfsrPrng(seed=11)
    probabilities = np.full((64, 64), 0.25)
    sample = prng.bernoulli_array(probabilities)
    assert sample.shape == (64, 64)
    assert sample.dtype == bool
    rate = sample.mean()
    assert 0.15 < rate < 0.35


def test_bernoulli_array_rejects_bad_probabilities():
    prng = LfsrPrng(seed=11)
    with pytest.raises(ValueError):
        prng.bernoulli_array(np.array([0.5, 1.2]))


def test_bernoulli_array_deterministic_given_state():
    a = LfsrPrng(seed=21)
    b = LfsrPrng(seed=21)
    probabilities = np.linspace(0, 1, 100).reshape(10, 10)
    assert np.array_equal(a.bernoulli_array(probabilities), b.bernoulli_array(probabilities))
