"""Batched-vs-scalar chip equivalence: the batch engine must be bit-identical.

The batched tick engine (``begin_batch``/``step_batch``/
``run_chip_inference_batch``) advances B samples in lock-step through the
same programmed chip the scalar path steps one sample at a time.  These
tests build random corelet networks — varying depth, router delay,
history-free vs stateful LIF neurons, shuffled inter-layer wiring, and
readout sizes with ``output_dim % num_classes != 0`` — and assert that the
per-sample class counts *and* the per-core spike counters of the batch run
equal those of B independent scalar runs exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapping.corelet import Corelet, CoreletNetwork
from repro.mapping.deploy import DeployedNetwork
from repro.mapping.pipeline import (
    program_chip,
    run_chip_inference,
    run_chip_inference_batch,
)
from repro.truenorth.config import CoreConfig, NeuronConfig
from repro.truenorth.core import NeurosynapticCore
from repro.truenorth.neuron import NeuronArray


def random_deployed_network(
    rng: np.random.Generator,
    depth: int,
    cores_per_layer,
    neurons_per_core: int,
    axons_per_first_core: int,
    num_classes: int,
    fractional_probabilities: bool = False,
) -> DeployedNetwork:
    """A random hand-built deployed copy (random wiring and ternary weights).

    Layer-0 axons consume the flat input contiguously; deeper layers consume
    a random permutation of the previous layer's output channels, exercising
    non-contiguous routing.  ``neurons_per_core * cores_per_layer[-1]`` is
    deliberately not forced to divide ``num_classes``.

    With ``fractional_probabilities`` the corelet ON-probabilities are
    scaled into (0.3, 0.95) instead of being exactly 0/1, so
    stochastic-synapse deployments actually re-sample (a 0/1 Bernoulli is
    deterministic regardless of the LFSR stream).
    """
    input_dim = cores_per_layer[0] * axons_per_first_core
    corelets, weights = [], []
    prev_out = input_dim
    for layer in range(depth):
        n_cores = cores_per_layer[layer]
        if layer == 0:
            channels = np.arange(input_dim)
        else:
            channels = rng.permutation(prev_out)
        per_core = len(channels) // n_cores
        layer_corelets, layer_weights = [], []
        out_base = 0
        for index in range(n_cores):
            ins = tuple(
                int(c) for c in channels[index * per_core : (index + 1) * per_core]
            )
            outs = tuple(range(out_base, out_base + neurons_per_core))
            out_base += neurons_per_core
            sampled = rng.integers(-1, 2, size=(len(ins), neurons_per_core)).astype(
                float
            )
            probabilities = np.abs(sampled)
            if fractional_probabilities:
                probabilities = probabilities * rng.uniform(
                    0.3, 0.95, size=probabilities.shape
                )
            layer_corelets.append(
                Corelet(
                    layer=layer,
                    index=index,
                    input_channels=ins,
                    probabilities=probabilities,
                    synaptic_values=np.sign(sampled),
                    output_channels=outs,
                )
            )
            layer_weights.append(sampled)
        corelets.append(layer_corelets)
        weights.append(layer_weights)
        prev_out = out_base
    assignment = rng.integers(0, num_classes, size=prev_out)
    assignment[:num_classes] = np.arange(num_classes)  # every class represented
    network = CoreletNetwork(
        corelets=corelets,
        class_assignment=assignment,
        num_classes=num_classes,
        input_dim=input_dim,
    )
    return DeployedNetwork(corelet_network=network, sampled_weights=weights)


def assert_batch_matches_scalar(deployed, chip, core_ids, volumes):
    """Run both engines on the same chip and compare everything."""
    core_order = [core_id for layer in core_ids for core_id in layer]
    batch = volumes.shape[0]
    scalar_counts = np.zeros(
        (batch, deployed.corelet_network.num_classes), dtype=np.int64
    )
    scalar_spikes = np.zeros((batch, len(core_order)), dtype=np.int64)
    for index in range(batch):
        scalar_counts[index] = run_chip_inference(
            chip, deployed, core_ids, volumes[index]
        )
        scalar_spikes[index] = [chip.core(c).spike_count for c in core_order]
    batch_counts = run_chip_inference_batch(chip, deployed, core_ids, volumes)
    batch_spikes = np.stack(
        [chip.core(c).batch_spike_counts for c in core_order], axis=1
    )
    assert np.array_equal(scalar_counts, batch_counts)
    assert np.array_equal(scalar_spikes, batch_spikes)
    assert not chip.router.has_pending()
    return batch_counts


@pytest.mark.parametrize(
    "depth,cores_per_layer,delay,neuron_config",
    [
        (1, (3,), 1, None),
        (2, (2, 2), 1, None),
        (3, (3, 2, 1), 1, None),
        (2, (2, 2), 3, None),
        (2, (2, 2), 1, NeuronConfig(threshold=1, history_free=False)),
        (3, (2, 2, 2), 2, NeuronConfig(threshold=2, leak=1, history_free=False)),
    ],
)
def test_batch_equals_scalar_over_random_networks(
    depth, cores_per_layer, delay, neuron_config
):
    rng = np.random.default_rng(100 * depth + 10 * delay)
    # 7 readout neurons per final core with 4 classes: output_dim is not a
    # multiple of num_classes, the readout layout the deployed-scoring fix
    # guards against.
    deployed = random_deployed_network(
        rng,
        depth=depth,
        cores_per_layer=cores_per_layer,
        neurons_per_core=7,
        axons_per_first_core=12,
        num_classes=4,
    )
    chip, core_ids = program_chip(
        deployed, neuron_config=neuron_config, router_delay=delay
    )
    volumes = (
        rng.random((6, 5, deployed.corelet_network.input_dim)) < 0.45
    ).astype(np.int8)
    counts = assert_batch_matches_scalar(deployed, chip, core_ids, volumes)
    if neuron_config is None:
        # History-free random ternary networks fire roughly half the time;
        # a silent run would make this test vacuous.
        assert counts.sum() > 0


def test_batch_equals_scalar_with_stochastic_synapses():
    """Batch mode replays the per-tick LFSR stream every scalar run sees.

    Each scalar run resets the chip (and core PRNGs), so sample i's tick-t
    connectivity draw is identical across samples; the batch engine draws
    once per tick and shares it, which must be spike-for-spike the same.
    """
    rng = np.random.default_rng(11)
    deployed = random_deployed_network(
        rng,
        depth=2,
        cores_per_layer=(2, 1),
        neurons_per_core=6,
        axons_per_first_core=10,
        num_classes=3,
    )
    neuron_config = NeuronConfig(
        weight_table=(1, -1, 0, 0),
        history_free=True,
        stochastic_synapses=True,
    )
    chip, core_ids = program_chip(deployed, neuron_config=neuron_config)
    for layer_ids, layer_corelets in zip(core_ids, deployed.corelet_network.corelets):
        for core_id, corelet in zip(layer_ids, layer_corelets):
            crossbar = chip.core(core_id).crossbar
            probabilities = np.zeros((crossbar.axons, crossbar.neurons))
            probabilities[: corelet.axon_count, : corelet.neuron_count] = (
                corelet.probabilities * 0.7
            )
            crossbar.set_probabilities(probabilities)
    volumes = (
        rng.random((4, 4, deployed.corelet_network.input_dim)) < 0.5
    ).astype(np.int8)
    counts = assert_batch_matches_scalar(deployed, chip, core_ids, volumes)
    assert counts.sum() > 0


def test_core_batch_spike_counts_match_scalar_runs():
    rng = np.random.default_rng(5)
    config = CoreConfig(axons=24, neurons=10)
    core = NeurosynapticCore(config)
    core.crossbar.set_signed_weights(rng.integers(-2, 3, size=(24, 10)))
    frames = (rng.random((7, 9, 24)) < 0.4).astype(np.int8)  # (batch, ticks, axons)

    scalar_counts, scalar_spikes = [], []
    for sample in frames:
        core.reset()
        scalar_spikes.append(core.run(sample))
        scalar_counts.append(core.spike_count)

    core.begin_batch(frames.shape[0])
    batch_spikes = np.stack(
        [core.tick_batch(frames[:, t]) for t in range(frames.shape[1])], axis=1
    )
    assert np.array_equal(batch_spikes, np.stack(scalar_spikes))
    assert np.array_equal(core.batch_spike_counts, np.array(scalar_counts))
    assert core.spike_count == int(np.sum(scalar_counts))


def test_neuron_array_mode_guards():
    array = NeuronArray(4)
    with pytest.raises(RuntimeError):
        array.step_batch(np.zeros((2, 4)))
    array.begin_batch(2)
    assert array.potentials.shape == (2, 4)
    with pytest.raises(RuntimeError):
        array.step(np.zeros(4))
    with pytest.raises(ValueError):
        array.step_batch(np.zeros((3, 4)))
    array.reset()
    assert array.batch_size is None
    assert array.potentials.shape == (4,)


def test_chip_mode_guards():
    rng = np.random.default_rng(2)
    deployed = random_deployed_network(
        rng,
        depth=1,
        cores_per_layer=(2,),
        neurons_per_core=5,
        axons_per_first_core=8,
        num_classes=3,
    )
    chip, _ = program_chip(deployed)
    chip.begin_batch(3)
    with pytest.raises(RuntimeError):
        chip.step()
    chip.reset()
    assert chip.batch_size is None
    with pytest.raises(RuntimeError):
        chip.step_batch()
    with pytest.raises(ValueError):
        chip.begin_batch(0)
