"""Shared fixtures.

Training even the laptop-scale models takes a few seconds, so fixtures that
need trained models are session-scoped and deliberately tiny (small synthetic
dataset, few epochs).  Tests that assert reproduction *shape* claims (biased
beats Tea at low duplication, histograms concentrate at the poles, ...) use
the slightly larger ``calibrated_context``; unit tests use the small one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import LayerSpec, NetworkArchitecture
from repro.datasets.base import Dataset, DatasetSplits
from repro.experiments.runner import ExperimentContext
from repro.mapping.blocks import stride_blocks


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help=(
            "regenerate the committed golden fixtures under tests/goldens/ "
            "from the current engines instead of comparing against them"
        ),
    )


@pytest.fixture
def regen_goldens(request) -> bool:
    """Whether this run rewrites the golden fixtures instead of diffing."""
    return request.config.getoption("--regen-goldens")


@pytest.fixture(scope="session")
def tiny_context() -> ExperimentContext:
    """A very small experiment context for fast unit tests."""
    return ExperimentContext(
        train_size=200,
        test_size=80,
        epochs=3,
        eval_samples=60,
        repeats=1,
        seed=0,
    )


@pytest.fixture(scope="session")
def calibrated_context() -> ExperimentContext:
    """A context large enough for the paper's qualitative claims to hold."""
    return ExperimentContext(
        train_size=1200,
        test_size=300,
        epochs=12,
        eval_samples=200,
        repeats=2,
        seed=0,
    )


@pytest.fixture(scope="session")
def tiny_tea_result(tiny_context):
    """Tea-trained model on the tiny context."""
    return tiny_context.result("tea")


@pytest.fixture(scope="session")
def tiny_biased_result(tiny_context):
    """Biased-trained model on the tiny context."""
    return tiny_context.result("biased")


@pytest.fixture(scope="session")
def small_architecture() -> NetworkArchitecture:
    """A minimal single-layer architecture (2 cores, 8x8 blocks, 4 classes)."""
    partition = stride_blocks((8, 16), (8, 8), 8)
    return NetworkArchitecture(
        input_dim=8 * 16,
        layers=(
            LayerSpec(
                core_count=partition.block_count,
                neurons_per_core=8,
                input_indices=partition.blocks,
            ),
        ),
        num_classes=4,
        activation_sigma=1.0,
        weight_init_scale=2.0,
        name="unit-test-arch",
    )


@pytest.fixture(scope="session")
def small_dataset() -> DatasetSplits:
    """A tiny synthetic 4-class dataset matching ``small_architecture``."""
    rng = np.random.default_rng(7)
    count = 160
    features = rng.random((count, 8 * 16))
    labels = rng.integers(0, 4, size=count)
    # Give each class a distinctive bright region so the problem is learnable.
    for i in range(count):
        region = int(labels[i]) * 32
        features[i, region : region + 32] = np.clip(
            features[i, region : region + 32] + 0.6, 0, 1
        )
    train = Dataset(features[:120], labels[:120], num_classes=4, name="unit-train")
    test = Dataset(features[120:], labels[120:], num_classes=4, name="unit-test")
    return DatasetSplits(train=train, test=test)
