"""Tests for losses, optimizers, initializers, and metrics."""

import numpy as np
import pytest

from repro.nn.initializers import glorot_uniform, he_normal, uniform_probability
from repro.nn.losses import (
    MeanSquaredError,
    SoftmaxCrossEntropy,
    predictions_to_labels,
    softmax,
)
from repro.nn.metrics import accuracy_score, confusion_matrix, per_class_accuracy
from repro.nn.optim import SGD, Adam, Momentum


# ---------------------------------------------------------------- losses
def test_softmax_rows_sum_to_one_and_stable():
    logits = np.array([[1000.0, 1000.0, 999.0], [-5.0, 0.0, 5.0]])
    probabilities = softmax(logits)
    assert np.allclose(probabilities.sum(axis=1), 1.0)
    assert np.all(np.isfinite(probabilities))


def test_cross_entropy_perfect_prediction_near_zero():
    loss = SoftmaxCrossEntropy()
    logits = np.array([[100.0, 0.0, 0.0]])
    assert loss.forward(logits, np.array([0])) < 1e-6


def test_cross_entropy_gradient_matches_numeric():
    loss = SoftmaxCrossEntropy()
    rng = np.random.default_rng(0)
    logits = rng.normal(size=(3, 4))
    targets = np.array([1, 3, 0])
    grad = loss.backward(logits, targets)
    eps = 1e-6
    for index in [(0, 1), (2, 2)]:
        perturbed = logits.copy()
        perturbed[index] += eps
        plus = loss.forward(perturbed, targets)
        perturbed[index] -= 2 * eps
        minus = loss.forward(perturbed, targets)
        assert np.isclose(grad[index], (plus - minus) / (2 * eps), atol=1e-5)


def test_cross_entropy_accepts_one_hot_targets():
    loss = SoftmaxCrossEntropy()
    logits = np.array([[2.0, 1.0], [0.0, 3.0]])
    labels = np.array([0, 1])
    one_hot = np.eye(2)[labels]
    assert np.isclose(loss.forward(logits, labels), loss.forward(logits, one_hot))


def test_cross_entropy_rejects_bad_labels():
    loss = SoftmaxCrossEntropy()
    with pytest.raises(ValueError):
        loss.forward(np.zeros((2, 3)), np.array([0, 5]))


def test_mse_and_prediction_labels():
    loss = MeanSquaredError()
    predictions = np.array([[0.9, 0.1], [0.2, 0.8]])
    assert loss.forward(predictions, np.array([0, 1])) < 0.05
    assert list(predictions_to_labels(predictions)) == [0, 1]


# ---------------------------------------------------------------- optimizers
def quadratic_problem():
    params = {"w": np.array([5.0, -3.0])}

    def grads():
        return {"w": 2.0 * params["w"]}

    return params, grads


@pytest.mark.parametrize(
    "optimizer",
    [SGD(learning_rate=0.1), Momentum(learning_rate=0.05, momentum=0.8), Adam(learning_rate=0.2)],
)
def test_optimizers_minimize_quadratic(optimizer):
    params, grads = quadratic_problem()
    for _ in range(200):
        optimizer.step(params, grads())
    assert np.linalg.norm(params["w"]) < 0.1


def test_optimizer_missing_gradient_raises():
    with pytest.raises(KeyError):
        SGD().step({"w": np.zeros(2)}, {})


def test_optimizer_validation():
    with pytest.raises(ValueError):
        SGD(learning_rate=0.0)
    with pytest.raises(ValueError):
        Momentum(momentum=1.0)
    with pytest.raises(ValueError):
        Adam(beta1=1.0)


def test_momentum_reset_clears_velocity():
    optimizer = Momentum(learning_rate=0.1)
    params = {"w": np.array([1.0])}
    optimizer.step(params, {"w": np.array([1.0])})
    optimizer.reset()
    assert optimizer._velocity == {}


# ---------------------------------------------------------------- initializers
def test_glorot_limits():
    weights = glorot_uniform((100, 50), rng=0)
    limit = np.sqrt(6.0 / 150)
    assert weights.shape == (100, 50)
    assert np.all(np.abs(weights) <= limit)


def test_he_normal_scale():
    weights = he_normal((2000, 10), rng=0)
    assert np.isclose(weights.std(), np.sqrt(2.0 / 2000), rtol=0.1)


def test_uniform_probability_range():
    weights = uniform_probability((50, 50), synaptic_value=2.0, low=0.25, high=0.75, rng=0)
    assert np.all(weights >= 0.5) and np.all(weights <= 1.5)
    with pytest.raises(ValueError):
        uniform_probability((2, 2), low=0.9, high=0.1)


# ---------------------------------------------------------------- metrics
def test_accuracy_and_confusion():
    labels = np.array([0, 1, 2, 2])
    predictions = np.array([0, 2, 2, 2])
    assert accuracy_score(labels, predictions) == 0.75
    matrix = confusion_matrix(labels, predictions, num_classes=3)
    assert matrix[1, 2] == 1 and matrix[2, 2] == 2
    per_class = per_class_accuracy(labels, predictions, num_classes=3)
    assert per_class[0] == 1.0 and per_class[1] == 0.0 and per_class[2] == 1.0


def test_metrics_validation():
    with pytest.raises(ValueError):
        accuracy_score(np.array([1]), np.array([1, 2]))
    with pytest.raises(ValueError):
        accuracy_score(np.array([]), np.array([]))
    with pytest.raises(ValueError):
        confusion_matrix(np.array([5]), np.array([0]), num_classes=3)
