"""End-to-end tests for the HTTP evaluation service.

The service promise: responses are bit-identical to a direct
``Session.evaluate`` of the same request (the transport adds queuing,
never arithmetic), overload is an explicit 429 with ``Retry-After`` rather
than unbounded queuing, shutdown resolves every admitted request (503, no
deadlocks), and ``/metrics`` counters satisfy their conservation
invariants at all times.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import EvalRequest, Session, UnsupportedRequestError
from repro.eval.runner import ScoreCache
from repro.serve import (
    EvalServer,
    EvalService,
    ModelRegistry,
    RequestRejectedError,
    ServeClient,
    ServeConfig,
    ServeError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)


@pytest.fixture(scope="module")
def registry(tiny_context) -> ModelRegistry:
    return ModelRegistry.from_context(tiny_context, methods=("tea",))


@pytest.fixture(scope="module")
def server(registry):
    config = ServeConfig(port=0, workers=2, queue_depth=16, batch_max=8)
    with EvalServer(registry, config) as running:
        yield running


@pytest.fixture(scope="module")
def client(server) -> ServeClient:
    return ServeClient(port=server.port, timeout=120.0)


def _direct(registry, **kwargs) -> EvalRequest:
    kwargs.setdefault("dataset", registry.dataset("test"))
    return EvalRequest(model=registry.model("tea"), **kwargs)


def assert_metrics_invariants(metrics):
    requests = metrics["requests"]
    assert requests["received"] == requests["admitted"] + requests["rejected"]
    assert (
        requests["admitted"]
        == requests["completed"] + requests["failed"] + requests["in_flight"]
    )
    assert requests["queue_depth"] >= 0
    p50, p95 = requests["latency_p50_seconds"], requests["latency_p95_seconds"]
    if p50 is not None:
        assert p50 <= p95


# ----------------------------------------------------------------------
# correctness: service responses == direct Session.evaluate, bit for bit
# ----------------------------------------------------------------------
def test_served_result_bit_identical_to_direct_session(registry, client):
    served = client.evaluate(
        model="tea", copy_levels=[1, 2], spf_levels=[1, 2], repeats=2, seed=0
    )
    direct = Session(cache=ScoreCache()).evaluate(
        _direct(registry, copy_levels=(1, 2), spf_levels=(1, 2), repeats=2, seed=0)
    )
    assert served.backend == direct.backend
    assert np.array_equal(served.scores, direct.scores)
    assert np.array_equal(served.accuracy, direct.accuracy)
    assert np.array_equal(served.labels, direct.labels)
    assert np.array_equal(served.class_counts(), direct.class_counts())


def test_served_chip_request_bit_identical_including_counters(registry, client):
    served = client.evaluate(
        model="tea",
        copy_levels=[1, 2],
        spf_levels=[2],
        seed=0,
        collect_spike_counters=True,
        max_samples=20,
    )
    direct = Session().evaluate(
        _direct(
            registry,
            copy_levels=(1, 2),
            spf_levels=(2,),
            seed=0,
            collect_spike_counters=True,
            max_samples=20,
        )
    )
    assert served.backend == "chip"  # capability-routed, as in Session auto
    assert np.array_equal(served.class_counts(), direct.class_counts())
    assert np.array_equal(served.spike_counters, direct.spike_counters)


def test_served_multicopy_stochastic_chip_bit_identical(registry, client):
    """The multi-copy chip backend is directly servable, bit for bit.

    ``stochastic_synapses`` is chip-only, so the service's ``auto`` session
    must route this to the chip backend, which serves all requested copies
    through one multi-copy chip image with per-copy LFSR streams; the
    served tensors (scores, exact integer class counts, per-core spike
    counters) must equal a direct ``Session.evaluate`` bit for bit.
    """
    kwargs = dict(
        copy_levels=(1, 3),
        spf_levels=(2,),
        seed=7,
        stochastic_synapses=True,
        collect_spike_counters=True,
        max_samples=16,
    )
    served = client.evaluate(
        model="tea", **{**kwargs, "copy_levels": [1, 3], "spf_levels": [2]}
    )
    direct = Session().evaluate(_direct(registry, **kwargs))
    assert served.backend == "chip"
    assert np.array_equal(served.scores, direct.scores)
    assert np.array_equal(served.class_counts(), direct.class_counts())
    assert np.array_equal(served.spike_counters, direct.spike_counters)
    assert served.spike_counters.shape[1] == 3  # copies axis, validated


def test_served_board_request_bit_identical(registry, client):
    """``link_delay`` is board-only, so the service's ``auto`` session must
    route it to the board backend and the served tensors must equal a
    direct evaluation bit for bit."""
    kwargs = dict(
        copy_levels=(1, 2),
        spf_levels=(1,),
        seed=3,
        link_delay=1,
        collect_spike_counters=True,
        max_samples=12,
    )
    served = client.evaluate(
        model="tea", **{**kwargs, "copy_levels": [1, 2], "spf_levels": [1]}
    )
    direct = Session().evaluate(_direct(registry, **kwargs))
    assert served.backend == "board"
    assert np.array_equal(served.scores, direct.scores)
    assert np.array_equal(served.class_counts(), direct.class_counts())
    assert np.array_equal(served.spike_counters, direct.spike_counters)


def test_concurrent_burst_all_bit_identical(registry, client):
    """Mixed concurrent sub-grid requests: every response stays exact."""
    grids = [((1,), (1, 2)), ((1, 2), (2,)), ((2,), (1,)), ((1, 2), (1, 2))]
    results = {}
    errors = []

    def fire(index, grid):
        copy_levels, spf_levels = grid
        try:
            results[index] = client.evaluate(
                model="tea",
                copy_levels=list(copy_levels),
                spf_levels=list(spf_levels),
                repeats=1,
                seed=0,
            )
        except Exception as error:  # pragma: no cover - failure reporting
            errors.append(error)

    threads = [
        threading.Thread(target=fire, args=(i, grid))
        for i, grid in enumerate(grids * 2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors
    assert len(results) == len(grids) * 2
    session = Session(cache=ScoreCache())
    for index, grid in enumerate(grids * 2):
        copy_levels, spf_levels = grid
        direct = session.evaluate(
            _direct(
                registry, copy_levels=copy_levels, spf_levels=spf_levels, seed=0
            )
        )
        assert np.array_equal(results[index].scores, direct.scores)


# ----------------------------------------------------------------------
# introspection endpoints
# ----------------------------------------------------------------------
def test_models_endpoint_lists_hosted_entries(client):
    listing = client.models()
    names = [entry["name"] for entry in listing["models"]]
    assert "tea" in names
    datasets = [entry["name"] for entry in listing["datasets"]]
    assert "test" in datasets
    assert set(listing["backends"]) >= {"vectorized", "chip", "reference"}


def test_healthz_reports_ok(client):
    health = client.health()
    assert health["status"] == "ok"
    assert health["workers"] == 2


def test_metrics_invariants_after_traffic(client):
    client.evaluate(model="tea", copy_levels=[1], spf_levels=[1], seed=3)
    metrics = client.metrics()
    assert_metrics_invariants(metrics)
    assert metrics["requests"]["completed"] >= 1
    assert "POST /v1/evaluate 200" in metrics["http"]


def test_repeated_request_is_a_cache_hit(client):
    # The repeat is served without recomputation by one of the two cache
    # tiers: the result memo (any backend) or the score cache (vectorized).
    before = client.metrics()
    client.evaluate(model="tea", copy_levels=[1, 2], spf_levels=[1], seed=11)
    client.evaluate(model="tea", copy_levels=[1, 2], spf_levels=[1], seed=11)
    after = client.metrics()
    served_before = before["cache"]["hits"] + before["memo"]["hits"]
    served_after = after["cache"]["hits"] + after["memo"]["hits"]
    assert served_after >= served_before + 1
    assert after["memo"]["hit_rate"] > 0 or after["cache"]["hit_rate"] > 0


# ----------------------------------------------------------------------
# typed errors over the wire
# ----------------------------------------------------------------------
def test_unknown_field_is_a_400_validation_error(client):
    with pytest.raises(RequestRejectedError) as excinfo:
        client.evaluate_payload({"model": "tea", "copy_level": [1]})
    assert excinfo.value.status == 400
    assert excinfo.value.error_type == "request-validation"


def test_unknown_model_is_a_404(client):
    with pytest.raises(RequestRejectedError) as excinfo:
        client.evaluate(model="nope")
    assert excinfo.value.status == 404
    assert excinfo.value.error_type == "unknown-model"


def test_value_range_violation_is_a_400(client):
    with pytest.raises(RequestRejectedError) as excinfo:
        client.evaluate(model="tea", repeats=0)
    assert excinfo.value.status == 400


def test_unsupported_request_raises_the_session_exception_type(client):
    """Chip-only flags on the vectorized backend: same error as in-process."""
    with pytest.raises(UnsupportedRequestError, match="cycle-accurate"):
        client.evaluate(
            model="tea",
            backend="vectorized",
            spf_levels=[1],
            collect_spike_counters=True,
        )


def test_unknown_route_is_a_404(client):
    with pytest.raises(ServeError) as excinfo:
        client._call("GET", "/v2/evaluate")
    assert excinfo.value.status == 404


# ----------------------------------------------------------------------
# coalescing through the queue (deterministic: enqueue before starting)
# ----------------------------------------------------------------------
def test_queued_same_fingerprint_requests_coalesce(registry):
    service = EvalService(
        registry, ServeConfig(workers=1, queue_depth=16, batch_max=8)
    )
    jobs = [
        service.enqueue(
            {
                "model": "tea",
                "copy_levels": copy_levels,
                "spf_levels": [1, 2],
                "seed": 5,
            }
        )
        # Same grid maxima (the coalescing key), different reported
        # sub-levels — the coalescing win is many sub-grid reads per pass.
        for copy_levels in ([2], [1, 2], [1, 2])
    ]
    service.start()  # single worker claims all three in one batch
    try:
        for job in jobs:
            assert job.done.wait(timeout=120)
            assert job.error is None
        metrics = service.metrics()
        assert metrics["sessions"]["engine_passes"] == 1
        assert metrics["sessions"]["coalesced_requests"] == 2
        assert_metrics_invariants(metrics)
    finally:
        service.close()


# ----------------------------------------------------------------------
# overload and shutdown: explicit 429 / 503, never a deadlock
# ----------------------------------------------------------------------
def test_overload_returns_429_and_shutdown_resolves_queued_jobs(registry):
    """workers=0 freezes the pool, so shedding is exactly deterministic."""
    config = ServeConfig(port=0, workers=0, queue_depth=2)
    server = EvalServer(registry, config).start()
    client = ServeClient(port=server.port, timeout=60.0)
    outcomes = {}

    def fire(index):
        try:
            outcomes[index] = client.evaluate(model="tea", seed=index)
        except Exception as error:
            outcomes[index] = error

    hung = []
    try:
        # Fill the bounded queue: these two are admitted and (with no
        # workers) wait forever.
        for index in range(2):
            thread = threading.Thread(target=fire, args=(index,))
            thread.start()
            hung.append(thread)
        deadline = threading.Event()
        for _ in range(100):
            if client.metrics()["requests"]["queue_depth"] == 2:
                break
            deadline.wait(0.05)
        assert client.metrics()["requests"]["queue_depth"] == 2

        with pytest.raises(ServiceOverloadedError) as excinfo:
            client.evaluate(model="tea", seed=99)
        assert excinfo.value.retry_after >= 1

        metrics = client.metrics()
        assert metrics["requests"]["rejected"] == 1
        assert metrics["requests"]["admitted"] == 2
        assert_metrics_invariants(metrics)
    finally:
        server.close()
        for thread in hung:
            thread.join(timeout=30)
    assert all(not thread.is_alive() for thread in hung)
    for index in range(2):
        assert isinstance(outcomes[index], ServiceUnavailableError)
        assert outcomes[index].error_type == "shutting-down"


def test_request_timeout_answers_504(registry):
    config = ServeConfig(port=0, workers=0, queue_depth=4, request_timeout=0.1)
    with EvalServer(registry, config) as server:
        client = ServeClient(port=server.port, timeout=60.0)
        with pytest.raises(ServeError) as excinfo:
            client.evaluate(model="tea", seed=0)
        assert excinfo.value.status == 504
        assert excinfo.value.error_type == "timeout"


# ----------------------------------------------------------------------
# durable tier: process workers, result memo, journal warm restart
# ----------------------------------------------------------------------
def test_process_worker_mode_bit_identical(registry):
    """Process workers serve around the GIL with bit-identical responses.

    Covers both a vectorized and a chip request (the chip result crosses
    the process boundary as pickled numpy tensors — exact by construction)
    and checks that a typed error raised inside a worker child keeps its
    exception type across the hop.
    """
    config = ServeConfig(port=0, workers=1, worker_mode="process", queue_depth=8)
    with EvalServer(registry, config) as running:
        client = ServeClient(port=running.port, timeout=120.0)
        served = client.evaluate(
            model="tea", copy_levels=[1, 2], spf_levels=[1], repeats=1, seed=0
        )
        chip = client.evaluate(
            model="tea",
            copy_levels=[1],
            spf_levels=[2],
            seed=0,
            collect_spike_counters=True,
            max_samples=16,
        )
        with pytest.raises(UnsupportedRequestError, match="cycle-accurate"):
            client.evaluate(
                model="tea",
                backend="vectorized",
                collect_spike_counters=True,
            )
        metrics = client.metrics()
        assert metrics["worker_mode"] == "process"
        assert_metrics_invariants(metrics)
    session = Session(cache=ScoreCache())
    direct = session.evaluate(
        _direct(registry, copy_levels=(1, 2), spf_levels=(1,), seed=0)
    )
    direct_chip = session.evaluate(
        _direct(
            registry,
            copy_levels=(1,),
            spf_levels=(2,),
            seed=0,
            collect_spike_counters=True,
            max_samples=16,
        )
    )
    assert np.array_equal(served.scores, direct.scores)
    assert np.array_equal(served.accuracy, direct.accuracy)
    assert chip.backend == "chip"
    assert np.array_equal(chip.class_counts(), direct_chip.class_counts())
    assert np.array_equal(chip.spike_counters, direct_chip.spike_counters)


def test_repeated_chip_request_served_from_memo(registry):
    """The result memo covers backends the score cache never touches."""
    config = ServeConfig(port=0, workers=1, queue_depth=8)
    with EvalServer(registry, config) as running:
        client = ServeClient(port=running.port, timeout=120.0)
        kwargs = dict(
            model="tea",
            copy_levels=[1],
            spf_levels=[2],
            seed=4,
            collect_spike_counters=True,
            max_samples=12,
        )
        first = client.evaluate(**kwargs)
        passes_before = client.metrics()["sessions"]["engine_passes"]
        second = client.evaluate(**kwargs)
        metrics = client.metrics()
        assert first.backend == "chip"
        assert np.array_equal(first.scores, second.scores)
        assert np.array_equal(first.class_counts(), second.class_counts())
        assert metrics["sessions"]["engine_passes"] == passes_before
        assert metrics["memo"]["hits"] >= 1


def test_journal_warm_restart_answers_burst_from_cache(registry, tmp_path):
    """Kill-and-restart durability: the journal warms the next boot.

    A server journals its admitted burst (vectorized + chip), is torn down,
    and a fresh server on the same journal + cache directory must answer
    the repeated burst bit-identically *without recomputation* (zero new
    engine passes after the boot-time warm replay).
    """
    journal_path = str(tmp_path / "journal.jsonl")
    config = ServeConfig(
        port=0,
        workers=2,
        queue_depth=16,
        journal_path=journal_path,
        cache_dir=str(tmp_path / "scores"),
    )
    burst = [
        dict(model="tea", copy_levels=[1, 2], spf_levels=[1], seed=21),
        dict(
            model="tea",
            copy_levels=[1],
            spf_levels=[2],
            seed=21,
            collect_spike_counters=True,
            max_samples=12,
        ),
    ]
    with EvalServer(registry, config) as running:
        client = ServeClient(port=running.port, timeout=120.0)
        first_results = [client.evaluate(**kwargs) for kwargs in burst]
        recorded = client.metrics()["journal"]["recorded"]
        assert recorded == len(burst)

    # "Restart": a brand-new server process state on the same durable
    # paths.  The journal must have survived without any shutdown help.
    with EvalServer(registry, config) as revived:
        client = ServeClient(port=revived.port, timeout=120.0)
        metrics = client.metrics()
        assert metrics["journal"]["warmed_at_boot"] == len(burst)
        passes_after_warm = metrics["sessions"]["engine_passes"]
        second_results = [client.evaluate(**kwargs) for kwargs in burst]
        metrics = client.metrics()
        assert metrics["sessions"]["engine_passes"] == passes_after_warm
        assert metrics["memo"]["hits"] >= len(burst)
        assert_metrics_invariants(metrics)
    for first, second in zip(first_results, second_results):
        assert first.backend == second.backend
        assert np.array_equal(first.scores, second.scores)
        assert np.array_equal(first.accuracy, second.accuracy)


def test_seed_none_requests_are_never_journaled(registry, tmp_path):
    journal_path = str(tmp_path / "journal.jsonl")
    config = ServeConfig(
        port=0, workers=1, queue_depth=8, journal_path=journal_path
    )
    with EvalServer(registry, config) as running:
        client = ServeClient(port=running.port, timeout=120.0)
        client.evaluate(model="tea", seed=None)
        client.evaluate(model="tea", seed=17)
        metrics = client.metrics()
        assert metrics["journal"]["recorded"] == 1


def test_client_retry_honours_retry_after_hint(registry):
    """evaluate_with_retry sleeps the server's drain estimate, then wins."""
    config = ServeConfig(port=0, workers=2, queue_depth=2)
    with EvalServer(registry, config) as running:
        client = ServeClient(port=running.port, timeout=120.0)
        naps = []

        # Saturate the queue briefly with a slow-ish burst, then retry in
        # the middle of it; the retry client must eventually succeed and
        # every nap must be a positive, clamped Retry-After hint.
        def fire(seed):
            try:
                client.evaluate(model="tea", seed=seed, repeats=2)
            except ServiceOverloadedError:
                pass

        threads = [
            threading.Thread(target=fire, args=(seed,)) for seed in range(6)
        ]
        for thread in threads:
            thread.start()
        result = client.evaluate_with_retry(
            {"model": "tea", "seed": 99},
            retries=50,
            sleep=lambda seconds: naps.append(seconds) or None,
        )
        for thread in threads:
            thread.join(timeout=120)
        assert result.seed == 99
        assert all(1.0 <= nap <= 60.0 for nap in naps)
