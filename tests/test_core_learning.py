"""Tests for the learning methods (Tea, L1, probability-biased)."""

import numpy as np
import pytest

from repro.core.biased import L1Learning, ProbabilityBiasedLearning
from repro.core.penalties import pole_fraction, zero_fraction
from repro.core.tea import TeaLearning
from repro.core.variance import mean_synaptic_variance


def test_tea_learning_produces_deployable_model(small_architecture, small_dataset):
    result = TeaLearning(epochs=4, seed=0).train(small_architecture, small_dataset)
    model = result.model
    assert result.method == "tea"
    assert 0.0 <= result.float_accuracy <= 1.0
    assert model.float_accuracy == result.float_accuracy
    # Weights representable as probabilities.
    assert np.all(np.abs(model.all_weights()) <= small_architecture.synaptic_value + 1e-9)
    assert result.history.epochs == 4
    assert model.metadata["method"] == "tea"


def test_tea_learning_learns_above_chance(small_architecture, small_dataset):
    result = TeaLearning(epochs=8, seed=0).train(small_architecture, small_dataset)
    assert result.float_accuracy > 0.5  # chance is 0.25 for 4 classes


def test_biased_learning_concentrates_probabilities(small_architecture, small_dataset):
    # The unit-test problem is tiny (few gradient steps per epoch), so a
    # stronger penalty and smaller batches are used than the paper-scale
    # defaults to make the pole attraction visible within a few epochs.
    tea = TeaLearning(epochs=12, seed=0, batch_size=8).train(
        small_architecture, small_dataset
    )
    biased = ProbabilityBiasedLearning(
        epochs=12, seed=0, batch_size=8, penalty_weight=0.02
    ).train(small_architecture, small_dataset)
    tea_pole = pole_fraction(tea.model.all_probabilities())
    biased_pole = pole_fraction(biased.model.all_probabilities())
    assert biased_pole > tea_pole
    assert biased_pole > 0.5


def test_biased_learning_reduces_mean_synaptic_variance(small_architecture, small_dataset):
    tea = TeaLearning(epochs=10, seed=0, batch_size=8).train(
        small_architecture, small_dataset
    )
    biased = ProbabilityBiasedLearning(
        epochs=10, seed=0, batch_size=8, penalty_weight=0.02
    ).train(small_architecture, small_dataset)
    def variance_of(model):
        probabilities = model.all_probabilities()
        return mean_synaptic_variance(probabilities, np.ones_like(probabilities))

    assert variance_of(biased.model) < variance_of(tea.model)


def test_l1_learning_sparsifies_weights(small_architecture, small_dataset):
    tea = TeaLearning(epochs=6, seed=0).train(small_architecture, small_dataset)
    l1 = L1Learning(epochs=6, seed=0, penalty_weight=0.003).train(
        small_architecture, small_dataset
    )
    assert zero_fraction(l1.model.all_weights(), tolerance=0.02) > zero_fraction(
        tea.model.all_weights(), tolerance=0.02
    )
    assert l1.method == "l1"


def test_warmup_epochs_recorded_and_bounded(small_architecture, small_dataset):
    result = ProbabilityBiasedLearning(
        epochs=5, seed=0, penalty_warmup_fraction=0.6
    ).train(small_architecture, small_dataset)
    warmup = result.model.metadata["warmup_epochs"]
    assert warmup == 3
    assert result.history.epochs == 5
    # No penalty -> no warmup split.
    tea = TeaLearning(epochs=3, seed=0).train(small_architecture, small_dataset)
    assert tea.model.metadata["warmup_epochs"] == 0


def test_invalid_hyperparameters_rejected(small_architecture, small_dataset):
    with pytest.raises(ValueError):
        ProbabilityBiasedLearning(penalty_weight=-1.0)
    with pytest.raises(ValueError):
        L1Learning(penalty_weight=-0.1)
    bad = ProbabilityBiasedLearning(epochs=2, penalty_warmup_fraction=1.5)
    with pytest.raises(ValueError):
        bad.train(small_architecture, small_dataset)


def test_training_is_deterministic_given_seed(small_architecture, small_dataset):
    a = TeaLearning(epochs=2, seed=123).train(small_architecture, small_dataset)
    b = TeaLearning(epochs=2, seed=123).train(small_architecture, small_dataset)
    assert np.allclose(a.model.all_weights(), b.model.all_weights())
    assert a.float_accuracy == b.float_accuracy


def test_different_seeds_differ(small_architecture, small_dataset):
    a = TeaLearning(epochs=2, seed=1).train(small_architecture, small_dataset)
    b = TeaLearning(epochs=2, seed=2).train(small_architecture, small_dataset)
    assert not np.allclose(a.model.all_weights(), b.model.all_weights())
