"""Single-pass (copies, spf, repeats) chip grids: bit-identical to the loops.

PR 7 folds the *repeats* axis into the stacked-copy axis: the chip backend
programs ``repeats * max_copies`` copies side by side (each repeat block
with its own deployment and per-copy LFSR streams) and feeds each repeat
its own encoded volume through the chip's grouped-input form.  These
property tests pin the folded pass against the per-(spf, repeat) loops it
replaced, at ``atol=0``:

* pipeline level — one repeat-folded multi-copy image vs one multi-copy
  pass per repeat: per-copy class counts, per-core spike counters, summed
  router delivered/hop counters, and (stochastic mode) the final per-copy
  LFSR register states, over LIF neurons, router delays > 1, and a
  mid-run ``reset()``;
* backend level — ``ChipBackend`` multi-spf grids vs single-level
  requests and vs the ``multicopy=False`` loop, including ``workers=2``
  process fan-out over spf levels;
* programming level — per-core-fit trimming gives heterogeneous corelets
  their own crossbar geometry in deterministic mode while stochastic
  images keep the network-uniform shape (the LFSR sample layout is a
  function of crossbar geometry, so trimming there would silently change
  every committed stochastic golden).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import EvalRequest
from repro.api.backends import ChipBackend
from repro.mapping.pipeline import (
    program_chip,
    program_chip_multicopy,
    run_chip_inference_multicopy,
)
from repro.truenorth.config import NeuronConfig

from test_chip_batch_equivalence import random_deployed_network
from test_chip_multicopy_equivalence import _STOCHASTIC, random_deployed_copies

_MODEL = {}


@pytest.fixture(scope="module", autouse=True)
def _trained(tiny_context):
    """Module-scoped trained model shared with the hypothesis tests."""
    _MODEL["model"] = tiny_context.result("tea").model
    _MODEL["dataset"] = tiny_context.evaluation_dataset().take(16)
    yield
    _MODEL.clear()


def _request(**kwargs):
    kwargs.setdefault("copy_levels", (1, 2))
    kwargs.setdefault("spf_levels", (1, 2))
    kwargs.setdefault("repeats", 2)
    kwargs.setdefault("seed", 0)
    return EvalRequest(model=_MODEL["model"], dataset=_MODEL["dataset"], **kwargs)


# ----------------------------------------------------------------------
# pipeline level: repeat-folded image vs one multi-copy pass per repeat
# ----------------------------------------------------------------------
def run_per_repeat_loop(groups, volumes, neuron_config, delay, seed_groups):
    """The reference: one multi-copy chip image and one pass per repeat."""
    counts, spikes, states = [], [], []
    delivered = hops = 0
    for index, group in enumerate(groups):
        chip, core_ids = program_chip_multicopy(
            group, neuron_config=neuron_config, router_delay=delay
        )
        counts.append(
            run_chip_inference_multicopy(
                chip,
                group,
                core_ids,
                volumes[index],
                copy_seeds=None if seed_groups is None else seed_groups[index],
            )
        )
        order = [cid for layer in core_ids for cid in layer]
        spikes.append(
            np.stack([chip.core(k).multicopy_spike_counts for k in order], axis=1)
        )
        if chip.core(order[0]).copy_prngs is not None:
            states.append(
                [
                    [chip.core(k).copy_prngs[c].state for k in order]
                    for c in range(len(group))
                ]
            )
        delivered += chip.router.delivered_count
        hops += chip.router.hop_count
    return np.stack(counts), np.stack(spikes), states, (delivered, hops)


def assert_folded_matches_per_repeat(
    groups, volumes, neuron_config=None, delay=1, seed_groups=None
):
    """Fold all repeats into one image, run once, compare at atol=0.

    ``groups`` is a list of R copy lists (the repeats), ``volumes`` the R
    per-repeat input volumes; the folded pass stacks them into the 4-D
    grouped form so repeat r's volume feeds exactly its block of copies.
    """
    counts, spikes, states, router = run_per_repeat_loop(
        groups, volumes, neuron_config, delay, seed_groups
    )
    repeats, per_repeat = len(groups), len(groups[0])
    flat = [copy for group in groups for copy in group]
    chip, core_ids = program_chip_multicopy(
        flat, neuron_config=neuron_config, router_delay=delay
    )
    flat_seeds = (
        None
        if seed_groups is None
        else [seed for group in seed_groups for seed in group]
    )
    folded = run_chip_inference_multicopy(
        chip, flat, core_ids, np.stack(volumes), copy_seeds=flat_seeds
    )
    order = [cid for layer in core_ids for cid in layer]
    folded_spikes = np.stack(
        [chip.core(k).multicopy_spike_counts for k in order], axis=1
    )
    assert np.array_equal(counts, folded.reshape(counts.shape))
    assert np.array_equal(spikes, folded_spikes.reshape(spikes.shape))
    assert (chip.router.delivered_count, chip.router.hop_count) == router
    if chip.core(order[0]).copy_prngs is not None:
        folded_states = [
            [
                [
                    chip.core(k).copy_prngs[r * per_repeat + c].state
                    for k in order
                ]
                for c in range(per_repeat)
            ]
            for r in range(repeats)
        ]
        assert folded_states == states
    assert not chip.router.has_pending()
    return chip, folded


def _repeat_groups(rng, repeats, per_repeat, depth, fractional=False):
    """R 'repeats' of C copies each, all sharing one random topology."""
    flat = random_deployed_copies(
        rng, repeats * per_repeat, depth, fractional_probabilities=fractional
    )
    return [
        flat[r * per_repeat : (r + 1) * per_repeat] for r in range(repeats)
    ]


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    repeats=st.sampled_from([1, 2, 3]),
    per_repeat=st.sampled_from([1, 2]),
    depth=st.sampled_from([1, 2]),
    delay=st.sampled_from([1, 2]),
    lif=st.booleans(),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_repeat_folding_bit_identical(repeats, per_repeat, depth, delay, lif, seed):
    rng = np.random.default_rng(seed)
    groups = _repeat_groups(rng, repeats, per_repeat, depth)
    neuron_config = (
        NeuronConfig(threshold=int(rng.integers(1, 3)), history_free=False)
        if lif
        else None
    )
    input_dim = groups[0][0].corelet_network.input_dim
    volumes = [
        (rng.random((4, 3, input_dim)) < 0.45).astype(np.int8)
        for _ in range(repeats)
    ]
    assert_folded_matches_per_repeat(
        groups, volumes, neuron_config=neuron_config, delay=delay
    )


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    repeats=st.sampled_from([2, 3]),
    per_repeat=st.sampled_from([1, 2]),
    delay=st.sampled_from([1, 2]),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_repeat_folding_stochastic_lfsr_streams_bit_identical(
    repeats, per_repeat, delay, seed
):
    """Every (repeat, copy) keeps its own LFSR stream in the folded image."""
    rng = np.random.default_rng(seed)
    groups = _repeat_groups(rng, repeats, per_repeat, 2, fractional=True)
    seed_groups = [
        [int(s) for s in rng.integers(1, 2**16, size=per_repeat)]
        for _ in range(repeats)
    ]
    input_dim = groups[0][0].corelet_network.input_dim
    volumes = [
        (rng.random((3, 3, input_dim)) < 0.5).astype(np.int8)
        for _ in range(repeats)
    ]
    assert_folded_matches_per_repeat(
        groups,
        volumes,
        neuron_config=_STOCHASTIC,
        delay=delay,
        seed_groups=seed_groups,
    )


def test_midrun_reset_replays_folded_grid():
    """chip.reset() between folded runs keeps programming and replays."""
    rng = np.random.default_rng(23)
    groups = _repeat_groups(rng, 2, 2, 2, fractional=True)
    flat = [copy for group in groups for copy in group]
    input_dim = flat[0].corelet_network.input_dim
    volumes = np.stack(
        [(rng.random((4, 4, input_dim)) < 0.5).astype(np.int8) for _ in range(2)]
    )
    chip, core_ids = program_chip_multicopy(flat, neuron_config=_STOCHASTIC)
    seeds = [3, 999, 31337, 77]
    first = run_chip_inference_multicopy(
        chip, flat, core_ids, volumes, copy_seeds=seeds
    )
    assert first.sum() > 0
    chip.begin_batch(4 * volumes.shape[1], copies=4, copy_seeds=seeds)
    chip.step_batch()
    chip.reset()
    again = run_chip_inference_multicopy(
        chip, flat, core_ids, volumes, copy_seeds=seeds
    )
    assert np.array_equal(first, again)


def test_grouped_volume_guards():
    rng = np.random.default_rng(5)
    groups = _repeat_groups(rng, 2, 2, 1)
    flat = [copy for group in groups for copy in group]
    chip, core_ids = program_chip_multicopy(flat)
    input_dim = flat[0].corelet_network.input_dim
    with pytest.raises(ValueError, match="does not divide the copy count"):
        run_chip_inference_multicopy(
            chip, flat, core_ids, np.zeros((3, 2, 2, input_dim), dtype=np.int8)
        )
    with pytest.raises(ValueError, match="expected volumes"):
        run_chip_inference_multicopy(
            chip, flat, core_ids, np.zeros((2, 2, input_dim - 1), dtype=np.int8)
        )


# ----------------------------------------------------------------------
# programming level: per-core-fit trimming
# ----------------------------------------------------------------------
def test_percore_fit_trims_heterogeneous_corelets():
    """Deterministic cores get their own geometry; stochastic stay uniform.

    The golden net is heterogeneous (a 10-axon first layer feeding 7-neuron
    cores), so deterministic programming must size each core to its own
    corelet instead of the network-wide maximum — trimmed entries are
    structural zeros, so results are unchanged (the equivalence suites and
    goldens pin that).  Stochastic programming keeps the uniform shape:
    LFSR connectivity samples are laid out over the crossbar geometry, and
    trimming would silently re-seed every committed stochastic golden.
    """
    rng = np.random.default_rng(11)
    deployed = random_deployed_network(
        rng,
        depth=2,
        cores_per_layer=(2, 2),
        neurons_per_core=7,
        axons_per_first_core=10,
        num_classes=4,
        fractional_probabilities=True,
    )
    chip, core_ids = program_chip(deployed)
    shapes = set()
    for layer_ids, layer in zip(core_ids, deployed.corelet_network.corelets):
        for core_id, corelet in zip(layer_ids, layer):
            config = chip.core(core_id).config
            assert (config.axons, config.neurons) == (
                corelet.axon_count,
                corelet.neuron_count,
            )
            shapes.add((config.axons, config.neurons))
    assert len(shapes) > 1  # the network is actually heterogeneous
    uniform_axons = max(
        c.axon_count for layer in deployed.corelet_network.corelets for c in layer
    )
    uniform_neurons = max(
        c.neuron_count
        for layer in deployed.corelet_network.corelets
        for c in layer
    )
    stochastic_chip, stochastic_ids = program_chip(
        deployed, neuron_config=_STOCHASTIC
    )
    for layer_ids in stochastic_ids:
        for core_id in layer_ids:
            config = stochastic_chip.core(core_id).config
            assert (config.axons, config.neurons) == (
                uniform_axons,
                uniform_neurons,
            )


# ----------------------------------------------------------------------
# backend level: grids, modes, and worker fan-out
# ----------------------------------------------------------------------
def _grid_fingerprint(result):
    parts = [result.class_counts()]
    if result.spike_counters is not None:
        parts.append(result.spike_counters)
    return parts


def _assert_results_equal(a, b):
    for left, right in zip(_grid_fingerprint(a), _grid_fingerprint(b)):
        np.testing.assert_array_equal(left, right)


@settings(max_examples=6, deadline=None)
@given(
    repeats=st.sampled_from([1, 2]),
    stochastic=st.booleans(),
    counters=st.booleans(),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_backend_grid_matches_single_level_requests(
    repeats, stochastic, counters, seed
):
    """A multi-spf grid equals its levels evaluated one request at a time."""
    request = _request(
        repeats=repeats,
        seed=seed,
        stochastic_synapses=stochastic,
        collect_spike_counters=counters,
    )
    grid = ChipBackend().evaluate(request)
    for column, spf in enumerate(request.spf_levels):
        single = ChipBackend().evaluate(
            _request(
                repeats=repeats,
                seed=seed,
                spf_levels=(spf,),
                stochastic_synapses=stochastic,
                collect_spike_counters=counters,
            )
        )
        np.testing.assert_array_equal(
            grid.class_counts()[:, :, column], single.class_counts()[:, :, 0]
        )
        if counters and spf == request.max_spf:
            np.testing.assert_array_equal(
                grid.spike_counters, single.spike_counters
            )


@settings(max_examples=4, deadline=None)
@given(
    stochastic=st.booleans(),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_backend_grid_multicopy_matches_percopy_loop(stochastic, seed):
    """The folded grid equals the one-chip-per-(repeat, copy) loop."""
    request = _request(
        repeats=2,
        seed=seed,
        stochastic_synapses=stochastic,
        collect_spike_counters=True,
    )
    _assert_results_equal(
        ChipBackend(multicopy=True).evaluate(request),
        ChipBackend(multicopy=False).evaluate(request),
    )


def test_backend_grid_bit_identical_with_worker_fanout():
    """workers=2 shards spf levels over processes without changing a bit."""
    request = _request(
        spf_levels=(1, 2, 3), repeats=2, seed=7, collect_spike_counters=True
    )
    _assert_results_equal(
        ChipBackend(workers=None).evaluate(request),
        ChipBackend(workers=2).evaluate(request),
    )
