"""Tests for the NSCS facade (deviation reports, frame running)."""

import numpy as np
import pytest

from repro.truenorth.chip import TrueNorthChip
from repro.truenorth.config import ChipConfig, CoreConfig, NeuronConfig
from repro.truenorth.core import NeurosynapticCore
from repro.truenorth.nscs import NeuroSynapticChipSimulator


def test_deviation_report_zero_when_exact():
    core = NeurosynapticCore(CoreConfig(axons=4, neurons=4))
    signed = np.eye(4, dtype=int)
    core.crossbar.set_signed_weights(signed)
    report = NeuroSynapticChipSimulator.deviation_report(core, signed.astype(float))
    assert report.zero_fraction == 1.0
    assert report.above_half_fraction == 0.0
    assert report.mean_deviation == 0.0


def test_deviation_report_detects_missing_connections():
    core = NeurosynapticCore(CoreConfig(axons=4, neurons=4))
    core.crossbar.set_signed_weights(np.zeros((4, 4), dtype=int))
    desired = np.full((4, 4), 0.8)
    report = NeuroSynapticChipSimulator.deviation_report(core, desired, normalization=1.0)
    assert report.above_half_fraction == 1.0
    assert np.isclose(report.mean_deviation, 0.8)
    assert np.isclose(report.max_deviation, 0.8)


def test_deviation_report_validates_shape_and_normalization():
    core = NeurosynapticCore(CoreConfig(axons=4, neurons=4))
    with pytest.raises(ValueError):
        NeuroSynapticChipSimulator.deviation_report(core, np.zeros((3, 4)))
    with pytest.raises(ValueError):
        NeuroSynapticChipSimulator.deviation_report(core, np.zeros((4, 4)), normalization=0.0)


def test_deviation_summary_is_plain_dict():
    core = NeurosynapticCore(CoreConfig(axons=4, neurons=4))
    core.crossbar.set_signed_weights(np.zeros((4, 4), dtype=int))
    report = NeuroSynapticChipSimulator.deviation_report(core, np.zeros((4, 4)))
    summary = report.summary()
    assert set(summary) == {
        "zero_fraction",
        "above_half_fraction",
        "mean_deviation",
        "max_deviation",
    }


def test_run_frames_accumulates_output_spikes():
    config = ChipConfig(
        grid_shape=(1, 1),
        core_config=CoreConfig(axons=4, neurons=2, neuron_config=NeuronConfig()),
    )
    chip = TrueNorthChip(config)
    core = chip.allocate_core()
    signed = np.zeros((4, 2), dtype=int)
    signed[0, 0] = 1
    signed[1, 1] = -1
    core.crossbar.set_signed_weights(signed)
    chip.bind_input("in", core.core_id, axon_map=[0, 1])
    chip.bind_output("out", core.core_id, neuron_map=[0, 1])
    simulator = NeuroSynapticChipSimulator(chip)
    frames = np.tile(np.array([[1, 1]]), (5, 1))
    counts = simulator.run_frames("in", {0: frames}, "out", drain_ticks=2)
    # The positive-drive neuron fires on all 5 input ticks; the drain ticks
    # are silent because a crossbar with no active synapse never fires.
    assert counts[0][0] == 5
    # The negative-drive neuron is suppressed on input ticks (y' = -1) and
    # stays silent on the drain ticks.
    assert counts[0][1] == 0


def test_run_frames_requires_input():
    simulator = NeuroSynapticChipSimulator(TrueNorthChip(ChipConfig(grid_shape=(1, 1))))
    with pytest.raises(ValueError):
        simulator.run_frames("in", {}, "out")


def _routed_two_core_simulator() -> NeuroSynapticChipSimulator:
    """Two cores in a chain (core 0 -> core 1) with external I/O on both ends."""
    config = ChipConfig(
        grid_shape=(1, 2),
        core_config=CoreConfig(axons=4, neurons=3, neuron_config=NeuronConfig()),
    )
    chip = TrueNorthChip(config)
    first = chip.allocate_core()
    second = chip.allocate_core()
    weights = np.zeros((4, 3), dtype=int)
    weights[0, 0] = 1
    weights[1, 1] = 1
    weights[2, 2] = -1
    first.crossbar.set_signed_weights(weights)
    second.crossbar.set_signed_weights(np.eye(4, 3, dtype=int))
    chip.bind_input("in", first.core_id, axon_map=[0, 1, 2])
    for neuron in range(3):
        chip.router.connect(first.core_id, neuron, second.core_id, neuron)
    chip.bind_output("out", second.core_id, neuron_map=[0, 1, 2])
    return NeuroSynapticChipSimulator(chip)


def test_run_frames_batch_matches_per_sample_loop():
    """3-D input delegates to the batched engine, spike-for-spike equal to
    looping the scalar path over the samples."""
    rng = np.random.default_rng(0)
    volumes = (rng.random((5, 6, 3)) < 0.5).astype(np.int8)  # (batch, ticks, axons)
    simulator = _routed_two_core_simulator()
    batched = simulator.run_frames("in", {0: volumes}, "out", drain_ticks=2)
    assert batched[0].shape == (5, 3)
    scalar = np.stack(
        [
            simulator.run_frames("in", {0: volumes[index]}, "out", drain_ticks=2)[0]
            for index in range(volumes.shape[0])
        ]
    )
    assert np.array_equal(batched[0], scalar)


def test_run_frames_batch_validates_shapes():
    simulator = _routed_two_core_simulator()
    frames_2d = np.zeros((4, 3), dtype=np.int8)
    volumes_3d = np.zeros((2, 4, 3), dtype=np.int8)
    with pytest.raises(ValueError, match=r"2-D .* or all 3-D"):
        simulator.run_frames("in", {0: frames_2d, 1: volumes_3d}, "out")
    with pytest.raises(ValueError, match="batch size"):
        simulator.run_frames(
            "in",
            {0: volumes_3d, 1: np.zeros((3, 4, 3), dtype=np.int8)},
            "out",
        )
