"""Tests for the chip-level simulator."""

import numpy as np
import pytest

from repro.truenorth.chip import TrueNorthChip
from repro.truenorth.config import ChipConfig, CoreConfig, NeuronConfig


def small_chip(grid=(2, 2), axons=8, neurons=4):
    config = ChipConfig(
        grid_shape=grid,
        core_config=CoreConfig(axons=axons, neurons=neurons, neuron_config=NeuronConfig()),
    )
    return TrueNorthChip(config)


def test_allocation_and_capacity():
    chip = small_chip(grid=(1, 2))
    chip.allocate_core()
    chip.allocate_core()
    assert chip.allocated_cores == 2
    with pytest.raises(RuntimeError):
        chip.allocate_core()


def test_positions_follow_row_major_order():
    chip = small_chip(grid=(2, 2))
    ids = [chip.allocate_core().core_id for _ in range(4)]
    assert chip.position_of(ids[0]) == (0, 0)
    assert chip.position_of(ids[1]) == (0, 1)
    assert chip.position_of(ids[2]) == (1, 0)
    assert chip.position_of(ids[3]) == (1, 1)


def test_external_input_to_output_single_core():
    chip = small_chip()
    core = chip.allocate_core()
    signed = np.zeros((8, 4), dtype=int)
    signed[0, 0] = 1
    signed[1, 1] = -1
    core.crossbar.set_signed_weights(signed)
    chip.bind_input("in", core.core_id, axon_map=[0, 1])
    chip.bind_output("out", core.core_id, neuron_map=[0, 1])
    outputs = chip.step({"in": {0: np.array([1, 1])}})
    spikes = outputs["out"][0]
    assert spikes[0] == 1  # +1 input fires
    assert spikes[1] == 0  # -1 input suppresses


def test_inter_core_routing_takes_one_extra_tick():
    chip = small_chip()
    core_a = chip.allocate_core()
    core_b = chip.allocate_core()
    signed = np.zeros((8, 4), dtype=int)
    signed[0, 0] = 1
    core_a.crossbar.set_signed_weights(signed)
    signed_b = np.zeros((8, 4), dtype=int)
    signed_b[2, 3] = 1
    core_b.crossbar.set_signed_weights(signed_b)
    chip.bind_input("in", core_a.core_id, axon_map=[0])
    chip.bind_output("out", core_b.core_id, neuron_map=[3])
    chip.router.connect(core_a.core_id, 0, core_b.core_id, 2)

    # Tick 0: input spike reaches core A; its output is queued for tick 1.
    out0 = chip.step({"in": {0: np.array([1])}})
    # Tick 1: core B receives the routed spike; neuron 3's spike appears now.
    out1 = chip.step()
    spikes_via_b = out1["out"][0]
    assert spikes_via_b[0] == 1
    # At tick 0 the output channel existed; neuron 3 had no positive drive
    # from routing yet (only the unconditional >=0 firing of unconnected
    # neurons), which is why the router-driven path is checked at tick 1.
    assert out0["out"][0].shape == (1,)


def test_unknown_channel_rejected():
    chip = small_chip()
    chip.allocate_core()
    with pytest.raises(KeyError):
        chip.step({"nope": {0: np.array([1])}})


def test_binding_shape_validation():
    chip = small_chip()
    core = chip.allocate_core()
    chip.bind_input("in", core.core_id, axon_map=[0, 1, 2])
    with pytest.raises(ValueError):
        chip.step({"in": {0: np.array([1, 1])}})


def test_reset_clears_tick_and_router():
    chip = small_chip()
    core = chip.allocate_core()
    chip.bind_input("in", core.core_id, axon_map=[0])
    chip.step({"in": {0: np.array([1])}})
    assert chip.tick == 1
    chip.reset()
    assert chip.tick == 0
    assert list(chip.router.pending_events()) == []


def test_occupied_core_ids_reflect_programming():
    chip = small_chip()
    core_a = chip.allocate_core()
    chip.allocate_core()
    signed = np.zeros((8, 4), dtype=int)
    signed[0, 0] = 1
    core_a.crossbar.set_signed_weights(signed)
    assert chip.occupied_core_ids() == [core_a.core_id]


def test_channel_listing():
    chip = small_chip()
    core = chip.allocate_core()
    chip.bind_input("pixels", core.core_id, [0])
    chip.bind_output("classes", core.core_id, [0])
    assert chip.input_channels() == ["pixels"]
    assert chip.output_channels() == ["classes"]
