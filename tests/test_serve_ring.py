"""Rendezvous ring: determinism, stability, and the preference order.

The front tier's placement promises all reduce to three ring properties:
routing is a pure function of (membership, key); removing one replica
re-homes *only* that replica's keys (minimal disruption — the reason the
ring is rendezvous-hashed rather than modulo-hashed); and the full
preference order is the deterministic failover path.
"""

from __future__ import annotations

import pytest

from repro.serve.ring import EmptyRingError, ReplicaRing

REPLICAS = ("10.0.0.1:8101", "10.0.0.2:8101", "10.0.0.3:8101")
KEYS = [f"model-{index}" for index in range(200)]


def test_route_is_deterministic_across_instances():
    one = ReplicaRing(REPLICAS)
    other = ReplicaRing(reversed(REPLICAS))  # insertion order must not matter
    for key in KEYS:
        assert one.route(key) == other.route(key)
        assert one.preference(key) == other.preference(key)


def test_route_always_lands_on_a_member():
    ring = ReplicaRing(REPLICAS)
    for key in KEYS:
        assert ring.route(key) in REPLICAS


def test_preference_is_a_permutation_headed_by_the_route():
    ring = ReplicaRing(REPLICAS)
    for key in KEYS:
        order = ring.preference(key)
        assert sorted(order) == sorted(REPLICAS)
        assert order[0] == ring.route(key)


def test_removal_moves_only_the_removed_replicas_keys():
    """The minimal-disruption property: ejecting one replica re-homes its
    keys onto survivors and leaves every other key exactly where it was."""
    ring = ReplicaRing(REPLICAS)
    before = {key: ring.route(key) for key in KEYS}
    victim = REPLICAS[1]
    assert ring.remove(victim)
    after = {key: ring.route(key) for key in KEYS}
    for key in KEYS:
        if before[key] == victim:
            assert after[key] != victim
            # The key re-homes onto its *next* preference, not anywhere.
            survivors = [
                r for r in ReplicaRing(REPLICAS).preference(key) if r != victim
            ]
            assert after[key] == survivors[0]
        else:
            assert after[key] == before[key]


def test_rejoin_restores_the_original_assignment():
    ring = ReplicaRing(REPLICAS)
    before = {key: ring.route(key) for key in KEYS}
    ring.remove(REPLICAS[0])
    ring.add(REPLICAS[0])
    assert {key: ring.route(key) for key in KEYS} == before


def test_keys_spread_over_all_replicas():
    ring = ReplicaRing(REPLICAS)
    homes = {ring.route(key) for key in KEYS}
    assert homes == set(REPLICAS)


def test_assignments_matches_route():
    ring = ReplicaRing(REPLICAS)
    assignments = ring.assignments(KEYS[:10])
    assert assignments == {key: ring.route(key) for key in KEYS[:10]}


def test_membership_bookkeeping():
    ring = ReplicaRing(REPLICAS)
    assert len(ring) == 3
    assert REPLICAS[0] in ring
    assert ring.remove(REPLICAS[0])
    assert not ring.remove(REPLICAS[0])  # already gone
    assert REPLICAS[0] not in ring
    assert ring.add(REPLICAS[0])
    assert not ring.add(REPLICAS[0])  # already present
    assert set(ring.replicas) == set(REPLICAS)


def test_empty_ring_raises():
    ring = ReplicaRing([REPLICAS[0]])
    ring.remove(REPLICAS[0])
    with pytest.raises(EmptyRingError):
        ring.route("model-x")
    assert ring.preference("model-x") == []
