"""Tests for the accuracy-matched comparison procedure (Table 2)."""

import pytest

from repro.eval.comparison import (
    ConfigurationPoint,
    core_occupation_comparison,
    label_points,
    match_accuracy_levels,
    performance_comparison,
)


def paper_like_points():
    """Points shaped like the paper's Table 2(a): accuracy rises with cost."""
    tea = label_points(
        levels=[1, 2, 3, 5, 16],
        accuracies=[0.904, 0.924, 0.935, 0.942, 0.947],
        costs=[4, 8, 12, 20, 64],
        prefix="N",
    )
    biased = label_points(
        levels=[1, 2, 3, 5],
        accuracies=[0.929, 0.938, 0.942, 0.947],
        costs=[4, 8, 12, 20],
        prefix="B",
    )
    return tea, biased


def test_matching_picks_cheapest_adequate_configuration():
    tea, biased = paper_like_points()
    rows = match_accuracy_levels(tea, biased)
    by_label = {row.baseline.label: row for row in rows}
    # N2 (0.924) is matched by B1 (0.929): 8 - 4 = 4 cores saved (50%).
    assert by_label["N2"].ours.label == "B1"
    assert by_label["N2"].saved_cost == 4
    assert by_label["N2"].saved_fraction == pytest.approx(0.5)
    # N16 (0.947) is matched by B5 (0.947): 64 - 20 = 44 cores saved (68.8%).
    assert by_label["N16"].ours.label == "B5"
    assert by_label["N16"].saved_cost == 44
    assert by_label["N16"].saved_fraction == pytest.approx(0.6875)


def test_unreachable_accuracy_yields_no_match():
    tea = [ConfigurationPoint(level=1, accuracy=0.99, cost=4, label="N1")]
    biased = [ConfigurationPoint(level=1, accuracy=0.90, cost=4, label="B1")]
    rows = match_accuracy_levels(tea, biased)
    assert rows[0].ours is None
    assert rows[0].saved_cost == 0.0
    assert rows[0].speedup == 1.0


def test_matching_is_biased_toward_baseline():
    # When no equal accuracy exists, the proposed method must clear the next
    # *greater* accuracy, never a lower one.
    tea = [ConfigurationPoint(level=1, accuracy=0.93, cost=10, label="N1")]
    biased = [
        ConfigurationPoint(level=1, accuracy=0.929, cost=1, label="B1"),
        ConfigurationPoint(level=2, accuracy=0.95, cost=5, label="B2"),
    ]
    rows = match_accuracy_levels(tea, biased)
    assert rows[0].ours.label == "B2"


def test_core_occupation_comparison_summary():
    tea, biased = paper_like_points()
    rows, average, best = core_occupation_comparison(tea, biased)
    assert len(rows) == len(tea)
    assert 0.0 <= average <= 1.0
    assert best == pytest.approx(0.6875)


def test_performance_comparison_speedup():
    tea = label_points([1, 6, 13], [0.904, 0.928, 0.934], [1, 6, 13], "N")
    biased = label_points([1, 2], [0.929, 0.940], [1, 2], "B")
    rows, max_speedup = performance_comparison(tea, biased)
    by_label = {row.baseline.label: row for row in rows}
    assert by_label["N6"].speedup == pytest.approx(6.0)
    assert by_label["N13"].speedup == pytest.approx(6.5)
    assert max_speedup == pytest.approx(6.5)


def test_empty_inputs_rejected():
    with pytest.raises(ValueError):
        match_accuracy_levels([], [ConfigurationPoint(1, 0.9, 1.0)])
    with pytest.raises(ValueError):
        label_points([1, 2], [0.5], [1.0, 2.0], "N")


def test_no_matches_returns_zero_summaries():
    tea = [ConfigurationPoint(level=1, accuracy=0.99, cost=4, label="N1")]
    biased = [ConfigurationPoint(level=1, accuracy=0.5, cost=4, label="B1")]
    rows, average, best = core_occupation_comparison(tea, biased)
    assert average == 0.0 and best == 0.0
    rows, max_speedup = performance_comparison(tea, biased)
    assert max_speedup == 1.0
