"""Tests for the digital neuron models."""

import numpy as np
import pytest

from repro.truenorth import constants
from repro.truenorth.config import NeuronConfig
from repro.truenorth.neuron import LifNeuron, McCullochPittsNeuron, NeuronArray


def test_mcculloch_pitts_threshold_rule():
    neuron = McCullochPittsNeuron(NeuronConfig(threshold=0, leak=0))
    assert neuron.step(5) == 1
    assert neuron.step(0) == 1  # y' >= 0 fires (Eq. 4)
    assert neuron.step(-1) == 0


def test_mcculloch_pitts_leak_subtracted():
    neuron = McCullochPittsNeuron(NeuronConfig(leak=3))
    assert neuron.step(2) == 0  # 2 - 3 < 0
    assert neuron.step(3) == 1  # 3 - 3 >= 0


def test_mcculloch_pitts_is_history_free():
    neuron = McCullochPittsNeuron(NeuronConfig())
    neuron.step(100)
    # Potential resets regardless of input history.
    assert neuron.potential == neuron.config.reset_potential
    assert neuron.step(-1) == 0


def test_lif_accumulates_when_not_history_free():
    config = NeuronConfig(threshold=10, history_free=False)
    neuron = LifNeuron(config)
    assert neuron.step(4) == 0
    assert neuron.step(4) == 0
    assert neuron.potential == 8
    assert neuron.step(4) == 1  # 12 >= 10 fires
    assert neuron.potential == config.reset_potential


def test_lif_history_free_matches_mcculloch_pitts():
    config = NeuronConfig(threshold=0, leak=1, history_free=True)
    lif = LifNeuron(config)
    mcp = McCullochPittsNeuron(config)
    rng = np.random.default_rng(0)
    for _ in range(50):
        value = int(rng.integers(-5, 6))
        assert lif.step(value) == mcp.step(value)


def test_lif_reset():
    neuron = LifNeuron(NeuronConfig(threshold=100, history_free=False))
    neuron.step(5)
    neuron.reset()
    assert neuron.potential == neuron.config.reset_potential


def test_potential_saturates_at_hardware_range():
    neuron = LifNeuron(NeuronConfig(threshold=2**30, history_free=False))
    for _ in range(10):
        neuron.step(constants.POTENTIAL_MAX)
    assert neuron.potential <= constants.POTENTIAL_MAX


def test_neuron_array_matches_scalar_neurons():
    config = NeuronConfig(threshold=2, leak=1, history_free=False)
    array = NeuronArray(4, config)
    scalars = [LifNeuron(config) for _ in range(4)]
    rng = np.random.default_rng(1)
    for _ in range(30):
        inputs = rng.integers(-3, 4, size=4)
        vector_spikes = array.step(inputs)
        scalar_spikes = [scalars[i].step(int(inputs[i])) for i in range(4)]
        assert list(vector_spikes) == scalar_spikes
        assert list(array.potentials) == [s.potential for s in scalars]


def test_neuron_array_input_validation():
    array = NeuronArray(3)
    with pytest.raises(ValueError):
        array.step(np.zeros(4))
    with pytest.raises(ValueError):
        NeuronArray(0)


def test_neuron_config_validation():
    with pytest.raises(ValueError):
        NeuronConfig(weight_table=(1, 2, 3))
    with pytest.raises(ValueError):
        NeuronConfig(weight_table=(1, -1, 2, 10_000))
