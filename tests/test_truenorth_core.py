"""Tests for the neuro-synaptic core."""

import numpy as np
import pytest

from repro.truenorth.config import CoreConfig, NeuronConfig
from repro.truenorth.core import NeurosynapticCore


def make_core(axons=16, neurons=8, **neuron_kwargs):
    config = CoreConfig(
        axons=axons,
        neurons=neurons,
        neuron_config=NeuronConfig(**neuron_kwargs),
    )
    return NeurosynapticCore(config, core_id=0)


def test_tick_thresholds_integrated_input():
    core = make_core()
    connectivity = np.zeros((16, 8), dtype=bool)
    connectivity[:3, 0] = True  # neuron 0 gets up to +3
    core.crossbar.set_connectivity(connectivity)
    spikes = np.zeros(16, dtype=int)
    spikes[:3] = 1
    out = core.tick(spikes)
    assert out[0] == 1
    # Neurons with no active synapse never fire, even though their zero
    # weighted sum satisfies y' >= 0 under the threshold-0 rule.
    assert out.sum() == 1


def test_tick_silent_crossbar_never_fires():
    core = make_core()
    connectivity = np.zeros((16, 8), dtype=bool)
    connectivity[0, 0] = True
    core.crossbar.set_connectivity(connectivity)
    # No input spikes at all: every neuron is silent.
    assert core.tick(np.zeros(16, dtype=int)).sum() == 0
    # A spike on an axon with no ON synapse for a neuron leaves it silent too.
    spikes = np.zeros(16, dtype=int)
    spikes[1] = 1
    assert core.tick(spikes).sum() == 0


def test_negative_input_suppresses_spike():
    core = make_core()
    signed = np.zeros((16, 8), dtype=int)
    signed[0, 0] = -1
    core.crossbar.set_signed_weights(signed)
    spikes = np.zeros(16, dtype=int)
    spikes[0] = 1
    out = core.tick(spikes)
    assert out[0] == 0


def test_run_over_frames_and_counters():
    core = make_core()
    frames = np.zeros((5, 16), dtype=int)
    outputs = core.run(frames)
    assert outputs.shape == (5, 8)
    assert core.tick_count == 5
    assert core.spike_count == int(outputs.sum())


def test_run_validates_shape():
    core = make_core()
    with pytest.raises(ValueError):
        core.run(np.zeros((3, 10)))


def test_reset_clears_counters_but_keeps_programming():
    core = make_core()
    connectivity = np.zeros((16, 8), dtype=bool)
    connectivity[0, 0] = True
    core.crossbar.set_connectivity(connectivity)
    core.tick(np.ones(16, dtype=int))
    core.reset()
    assert core.tick_count == 0
    assert core.spike_count == 0
    assert core.crossbar.connectivity[0, 0]


def test_stochastic_core_uses_probabilities():
    core = make_core(stochastic_synapses=True, threshold=1)
    core.crossbar.set_probabilities(np.full((16, 8), 0.5))
    fired = 0
    ticks = 60
    for _ in range(ticks):
        fired += int(core.tick(np.ones(16, dtype=int)).sum())
    # With expectation 8 active synapses of weight +1 and threshold 1, neurons
    # should fire most but not necessarily all of the time.
    assert 0 < fired <= ticks * 8


def test_utilization_statistics():
    core = make_core()
    connectivity = np.zeros((16, 8), dtype=bool)
    connectivity[0, 0] = True
    connectivity[1, 0] = True
    core.crossbar.set_connectivity(connectivity)
    stats = core.utilization()
    assert stats["programmed_synapses"] == 2
    assert stats["used_axons"] == 2
    assert stats["used_neurons"] == 1
    assert 0 < stats["synapse_density"] < 1
