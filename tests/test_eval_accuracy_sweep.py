"""Tests for deployed-accuracy evaluation and the (copies, spf) sweep."""

import pytest

from repro.core.tea import TeaLearning
from repro.eval.accuracy import evaluate_deployed_accuracy
from repro.eval.sweep import accuracy_boost, accuracy_sweep


@pytest.fixture(scope="module")
def trained(small_architecture, small_dataset):
    result = TeaLearning(epochs=6, seed=0).train(small_architecture, small_dataset)
    return result.model, small_dataset.test


def test_deployed_accuracy_record_fields(trained):
    model, dataset = trained
    record = evaluate_deployed_accuracy(
        model, dataset, copies=2, spikes_per_frame=2, repeats=2, rng=0
    )
    assert record.copies == 2
    assert record.spikes_per_frame == 2
    assert record.repeats == 2
    assert record.cores == 2 * model.cores_per_copy
    assert 0.0 <= record.mean_accuracy <= 1.0
    assert record.std_accuracy >= 0.0


def test_deployed_accuracy_above_chance(trained):
    model, dataset = trained
    record = evaluate_deployed_accuracy(
        model, dataset, copies=4, spikes_per_frame=4, repeats=2, rng=0
    )
    assert record.mean_accuracy > 1.0 / model.architecture.num_classes


def test_deployed_accuracy_max_samples_and_validation(trained):
    model, dataset = trained
    record = evaluate_deployed_accuracy(
        model, dataset, copies=1, spikes_per_frame=1, repeats=1, rng=0, max_samples=10
    )
    assert 0.0 <= record.mean_accuracy <= 1.0
    with pytest.raises(ValueError):
        evaluate_deployed_accuracy(model, dataset, repeats=0)


def test_sweep_grid_shape_and_rows(trained):
    model, dataset = trained
    sweep = accuracy_sweep(
        model,
        dataset,
        copy_levels=(1, 2, 4),
        spf_levels=(1, 2),
        repeats=2,
        rng=0,
        max_samples=30,
        label="tea",
    )
    assert sweep.mean_accuracy.shape == (3, 2)
    assert sweep.std_accuracy.shape == (3, 2)
    assert list(sweep.cores) == [model.cores_per_copy * c for c in (1, 2, 4)]
    rows = sweep.as_rows()
    assert len(rows) == 6
    assert sweep.accuracy_at(2, 1) == pytest.approx(sweep.mean_accuracy[1, 0])
    assert sweep.label == "tea"


def test_sweep_duplicate_levels_deduplicated(trained):
    model, dataset = trained
    sweep = accuracy_sweep(
        model, dataset, copy_levels=(2, 1, 2), spf_levels=(1, 1), repeats=1, rng=0,
        max_samples=20,
    )
    assert sweep.copy_levels == (1, 2)
    assert sweep.spf_levels == (1,)


def test_sweep_accuracy_improves_with_duplication_on_average(trained):
    model, dataset = trained
    sweep = accuracy_sweep(
        model,
        dataset,
        copy_levels=(1, 8),
        spf_levels=(1, 4),
        repeats=3,
        rng=0,
        max_samples=40,
    )
    # The most-duplicated corner should not be worse than the least-duplicated
    # one (allowing a small tolerance for sampling noise on 40 samples).
    assert sweep.mean_accuracy[1, 1] >= sweep.mean_accuracy[0, 0] - 0.05


def test_sweep_validation(trained):
    model, dataset = trained
    with pytest.raises(ValueError):
        accuracy_sweep(model, dataset, copy_levels=(), spf_levels=(1,))
    with pytest.raises(ValueError):
        accuracy_sweep(model, dataset, copy_levels=(0,), spf_levels=(1,))
    with pytest.raises(ValueError):
        accuracy_sweep(model, dataset, copy_levels=(1,), spf_levels=(1,), repeats=0)


def test_accuracy_boost_requires_matching_grids(trained):
    model, dataset = trained
    sweep_a = accuracy_sweep(model, dataset, (1, 2), (1,), repeats=1, rng=0, max_samples=20)
    sweep_b = accuracy_sweep(model, dataset, (1, 2), (1,), repeats=1, rng=1, max_samples=20)
    boost = accuracy_boost(sweep_a, sweep_b)
    assert boost.shape == (2, 1)
    sweep_c = accuracy_sweep(model, dataset, (1, 4), (1,), repeats=1, rng=0, max_samples=20)
    with pytest.raises(ValueError):
        accuracy_boost(sweep_a, sweep_c)
