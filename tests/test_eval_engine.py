"""Tests for the vectorized evaluation engine, SweepRunner, and the
deployed-scoring correctness fixes (class-mean merge, active-synapse firing
gate, training-history alignment)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tea import TeaLearning
from repro.eval.engine import (
    VectorizedEvaluator,
    class_counts,
    evaluate_scores_reference,
    forward_spikes_reference,
)
from repro.eval.runner import ScoreCache, SweepRunner, model_fingerprint
from repro.eval.sweep import accuracy_sweep
from repro.encoding.stochastic import StochasticEncoder
from repro.mapping.corelet import Corelet, CoreletNetwork
from repro.mapping.deploy import DeployedNetwork, deploy_model, evaluate_deployed_scores
from repro.mapping.duplication import deploy_with_copies
from repro.nn.trainer import TrainingHistory


@pytest.fixture(scope="module")
def trained_model(small_architecture, small_dataset):
    return TeaLearning(epochs=3, seed=0).train(small_architecture, small_dataset).model


@pytest.fixture(scope="module")
def deployed_copies(trained_model):
    return deploy_with_copies(trained_model, copies=3, rng=0).copies


# ----------------------------------------------------------------------
# Engine vs reference loop
# ----------------------------------------------------------------------
def test_engine_scores_bit_identical_to_loop(trained_model, deployed_copies):
    features = np.random.default_rng(1).random(
        (7, trained_model.architecture.input_dim)
    )
    fast = evaluate_deployed_scores(deployed_copies, features, spikes_per_frame=3, rng=5)
    reference = evaluate_scores_reference(deployed_copies, features, 3, rng=5)
    assert fast.shape == reference.shape == (3, 3, 7, 4)
    assert np.array_equal(fast, reference)  # atol=0: bit-identical


def test_engine_forward_matches_single_copy_loop(trained_model, deployed_copies):
    frames = np.random.default_rng(2).integers(
        0, 2, size=(5, trained_model.architecture.input_dim)
    )
    evaluator = VectorizedEvaluator(deployed_copies)
    stacked = evaluator.forward_spikes(frames)
    for index, copy in enumerate(deployed_copies):
        assert np.array_equal(stacked[index], forward_spikes_reference(copy, frames))
        assert np.array_equal(stacked[index], copy.forward_spikes(frames))


def test_chunked_streaming_matches_one_shot(trained_model, deployed_copies):
    features = np.random.default_rng(3).random(
        (6, trained_model.architecture.input_dim)
    )
    full = evaluate_deployed_scores(deployed_copies, features, spikes_per_frame=4, rng=9)
    chunked = evaluate_deployed_scores(
        deployed_copies, features, spikes_per_frame=4, rng=9, chunk_frames=1
    )
    assert np.array_equal(full, chunked)


def test_encoder_chunks_reproduce_one_shot_stream():
    values = np.random.default_rng(4).random((5, 11))
    encoder = StochasticEncoder(spikes_per_frame=7)
    one_shot = encoder.encode(values, rng=42)
    chunks = list(encoder.iter_encoded(values, rng=42, chunk_frames=3))
    assert [start for start, _ in chunks] == [0, 3, 6]
    assert np.array_equal(np.concatenate([frames for _, frames in chunks]), one_shot)


def test_engine_matches_loop_on_multilayer_network(small_dataset):
    from repro.core.model import LayerSpec, NetworkArchitecture
    from repro.mapping.blocks import stride_blocks

    partition = stride_blocks((8, 16), (8, 8), 8)
    architecture = NetworkArchitecture(
        input_dim=8 * 16,
        layers=(
            LayerSpec(
                core_count=partition.block_count,
                neurons_per_core=8,
                input_indices=partition.blocks,
            ),
            LayerSpec(core_count=2, neurons_per_core=6),
        ),
        num_classes=4,
        weight_init_scale=2.0,
        name="two-layer-arch",
    )
    model = TeaLearning(epochs=2, seed=0).train(architecture, small_dataset).model
    copies = deploy_with_copies(model, copies=3, rng=0).copies
    features = small_dataset.test.features[:6]
    fast = evaluate_deployed_scores(copies, features, spikes_per_frame=2, rng=4)
    reference = evaluate_scores_reference(copies, features, 2, rng=4)
    assert fast.shape == (3, 2, 6, 4)
    assert np.array_equal(fast, reference)


def test_engine_handles_mixed_synaptic_magnitudes():
    # Hand-built corelet with two different |weight| values exercises the
    # explicit weights+mask fallback (the paper's mapping never produces
    # this, but the engine must not silently mis-gate it).
    axons, neurons = 4, 4
    values = np.array(
        [
            [1.0, -2.0, 1.0, -1.0],
            [2.0, 1.0, -1.0, 1.0],
            [1.0, 1.0, 2.0, -2.0],
            [-1.0, 2.0, 1.0, 1.0],
        ]
    )
    corelet = Corelet(
        layer=0,
        index=0,
        input_channels=tuple(range(axons)),
        probabilities=np.ones((axons, neurons)),
        synaptic_values=values,
        output_channels=tuple(range(neurons)),
    )
    network = CoreletNetwork(
        corelets=[[corelet]],
        class_assignment=np.arange(neurons) % 2,
        num_classes=2,
        input_dim=axons,
    )
    rng = np.random.default_rng(3)
    deployed = [
        DeployedNetwork(
            corelet_network=network,
            sampled_weights=[[np.where(rng.random((axons, neurons)) < 0.7, values, 0.0)]],
        )
        for _ in range(2)
    ]
    features = rng.random((5, axons))
    fast = evaluate_deployed_scores(deployed, features, spikes_per_frame=3, rng=11)
    reference = evaluate_scores_reference(deployed, features, 3, rng=11)
    assert np.array_equal(fast, reference)


def test_non_exact_magnitude_routes_to_fallback():
    from repro.eval.engine import _fold_exact

    assert _fold_exact(1.0) and _fold_exact(2.0) and _fold_exact(0.5)
    assert _fold_exact(0.25) and _fold_exact(3.0)
    assert not _fold_exact(0.3) and not _fold_exact(1.5e6)

    axons, neurons = 3, 4
    values = np.full((axons, neurons), 0.3) * np.where(
        np.arange(axons * neurons).reshape(axons, neurons) % 2, 1.0, -1.0
    )
    corelet = Corelet(
        layer=0,
        index=0,
        input_channels=tuple(range(axons)),
        probabilities=np.ones((axons, neurons)),
        synaptic_values=values,
        output_channels=tuple(range(neurons)),
    )
    network = CoreletNetwork(
        corelets=[[corelet]],
        class_assignment=np.arange(neurons) % 2,
        num_classes=2,
        input_dim=axons,
    )
    deployed = DeployedNetwork(corelet_network=network, sampled_weights=[[values.copy()]])
    evaluator = VectorizedEvaluator([deployed])
    entry = evaluator._layers[0][0]
    # 0.3 is not float32-exact with headroom -> explicit weights+mask path.
    assert entry.weights is not None and entry.shared_folded is None
    frames = np.array([[1.0, 0.0, 1.0], [1.0, 1.0, 1.0]])
    assert np.array_equal(
        evaluator.forward_spikes(frames)[0], forward_spikes_reference(deployed, frames)
    )


def test_cached_tensors_are_frozen(trained_model, small_dataset):
    cache = ScoreCache()
    runner = SweepRunner(
        copy_levels=(1,), spf_levels=(1,), repeats=1, max_samples=10, cache=cache
    )
    tensors = runner.cumulative_scores(trained_model, small_dataset.test, rng=0)
    with pytest.raises(ValueError):
        tensors[0][0, 0, 0, 0] = 99.0  # cache entries are read-only


def test_evaluator_rejects_mismatched_copies(trained_model, deployed_copies):
    with pytest.raises(ValueError):
        VectorizedEvaluator([])
    broken = DeployedNetwork(
        corelet_network=deployed_copies[0].corelet_network,
        sampled_weights=[layer[:1] for layer in deployed_copies[0].sampled_weights],
    )
    with pytest.raises(ValueError):
        VectorizedEvaluator([deployed_copies[0], broken])


def test_evaluator_accepts_structurally_equal_networks(trained_model):
    # Copies deployed without a shared pre-built corelet network rebuild
    # their corelets independently; stacking must still work.
    copies = [deploy_model(trained_model, rng=i) for i in range(2)]
    features = np.random.default_rng(5).random(
        (4, trained_model.architecture.input_dim)
    )
    scores = evaluate_deployed_scores(copies, features, spikes_per_frame=2, rng=0)
    assert scores.shape == (2, 2, 4, 4)


# ----------------------------------------------------------------------
# Property test: random tiny corelet networks, engine == loop
# ----------------------------------------------------------------------
@given(
    seed=st.integers(0, 2**16),
    copies=st.integers(1, 3),
    axons=st.integers(2, 6),
    neurons=st.integers(3, 7),
    num_classes=st.integers(2, 3),
)
@settings(max_examples=25, deadline=None)
def test_engine_matches_loop_on_random_models(seed, copies, axons, neurons, num_classes):
    rng = np.random.default_rng(seed)
    probabilities = rng.random((axons, neurons))
    synaptic_values = np.where(rng.random((axons, neurons)) < 0.5, 1.0, -1.0)
    corelet = Corelet(
        layer=0,
        index=0,
        input_channels=tuple(range(axons)),
        probabilities=probabilities,
        synaptic_values=synaptic_values,
        output_channels=tuple(range(neurons)),
    )
    network = CoreletNetwork(
        corelets=[[corelet]],
        class_assignment=np.arange(neurons) % num_classes,
        num_classes=num_classes,
        input_dim=axons,
    )
    deployed = []
    for _ in range(copies):
        on = rng.random((axons, neurons)) < probabilities
        deployed.append(
            DeployedNetwork(
                corelet_network=network,
                sampled_weights=[[np.where(on, synaptic_values, 0.0)]],
            )
        )
    features = rng.random((3, axons))
    fast = evaluate_deployed_scores(deployed, features, spikes_per_frame=2, rng=seed)
    reference = evaluate_scores_reference(deployed, features, 2, rng=seed)
    assert np.array_equal(fast, reference)


# ----------------------------------------------------------------------
# Bugfix: class-mean merge for non-divisible readout layers
# ----------------------------------------------------------------------
def _uneven_network():
    """5 readout neurons over 2 classes: class 0 holds 3 neurons, class 1 two."""
    axons, neurons = 4, 5
    corelet = Corelet(
        layer=0,
        index=0,
        input_channels=(0, 1, 2, 3),
        probabilities=np.ones((axons, neurons)),
        synaptic_values=np.ones((axons, neurons)),
        output_channels=tuple(range(neurons)),
    )
    return CoreletNetwork(
        corelets=[[corelet]],
        class_assignment=np.arange(neurons) % 2,
        num_classes=2,
        input_dim=axons,
    )


def test_class_scores_are_per_class_means_not_sums():
    network = _uneven_network()
    # All synapses ON with weight +1: every neuron spikes whenever any input
    # spikes, so both classes have identical per-neuron behaviour and must
    # score identically despite class 0 owning an extra readout neuron.
    deployed = DeployedNetwork(
        corelet_network=network,
        sampled_weights=[[np.ones((4, 5))]],
    )
    frame = np.array([[1.0, 0.0, 1.0, 0.0]])
    scores = deployed.class_scores(frame)
    assert scores.shape == (1, 2)
    assert scores[0, 0] == scores[0, 1] == 1.0  # means, not 3 vs 2
    assert np.array_equal(class_counts(network), np.array([3.0, 2.0]))


def test_class_scores_match_float_merge_convention():
    network = _uneven_network()
    deployed = DeployedNetwork(
        corelet_network=network, sampled_weights=[[np.ones((4, 5))]]
    )
    frame = np.array([[1.0, 1.0, 0.0, 0.0]])
    spikes = deployed.forward_spikes(frame)
    # The float model merges with a 1/n_k matrix (NetworkArchitecture.
    # merge_matrix); the deployed path must produce the same class means.
    assignment = network.class_assignment
    sizes = np.bincount(assignment, minlength=2).astype(float)
    merge = np.zeros((assignment.size, 2))
    merge[np.arange(assignment.size), assignment] = 1.0 / sizes[assignment]
    assert np.allclose(deployed.class_scores(frame), spikes @ merge)


# ----------------------------------------------------------------------
# Bugfix: active-synapse firing gate
# ----------------------------------------------------------------------
def test_all_off_neuron_never_fires():
    network = _uneven_network()
    weights = np.ones((4, 5))
    weights[:, 2] = 0.0  # neuron 2's synapses all sampled OFF
    deployed = DeployedNetwork(corelet_network=network, sampled_weights=[[weights]])
    frame = np.ones((2, 4))
    spikes = deployed.forward_spikes(frame)
    assert np.array_equal(spikes[:, 2], np.zeros(2))
    assert np.array_equal(spikes[:, [0, 1, 3, 4]], np.ones((2, 4)))


def test_zero_input_frame_produces_no_spikes(trained_model):
    deployed = deploy_model(trained_model, rng=0)
    spikes = deployed.forward_spikes(
        np.zeros((3, trained_model.architecture.input_dim))
    )
    assert spikes.sum() == 0.0
    scores = deployed.class_scores(
        np.zeros((1, trained_model.architecture.input_dim))
    )
    assert np.array_equal(scores, np.zeros_like(scores))


# ----------------------------------------------------------------------
# SweepRunner: grid equivalence and caching
# ----------------------------------------------------------------------
def test_sweep_runner_matches_accuracy_sweep(trained_model, small_dataset):
    dataset = small_dataset.test
    runner = SweepRunner(
        copy_levels=(1, 2), spf_levels=(1, 2), repeats=2, max_samples=25,
        cache=ScoreCache(),
    )
    from_runner = runner.run(trained_model, dataset, rng=0, label="tea")
    from_function = accuracy_sweep(
        trained_model,
        dataset,
        copy_levels=(1, 2),
        spf_levels=(1, 2),
        repeats=2,
        rng=0,
        max_samples=25,
        label="tea",
        cache=ScoreCache(),
    )
    assert np.array_equal(from_runner.mean_accuracy, from_function.mean_accuracy)
    assert np.array_equal(from_runner.std_accuracy, from_function.std_accuracy)
    assert from_runner.copy_levels == from_function.copy_levels


def test_sweep_runner_cache_hit_skips_reevaluation(trained_model, small_dataset):
    cache = ScoreCache()
    runner = SweepRunner(
        copy_levels=(1, 2), spf_levels=(1,), repeats=1, max_samples=20, cache=cache
    )
    first = runner.run(trained_model, small_dataset.test, rng=0)
    assert cache.misses == 1 and cache.hits == 0 and len(cache) == 1
    second = runner.run(trained_model, small_dataset.test, rng=0)
    assert cache.hits == 1
    assert np.array_equal(first.mean_accuracy, second.mean_accuracy)
    # A different seed is a different key.
    runner.run(trained_model, small_dataset.test, rng=1)
    assert cache.misses == 2


def test_sweep_runner_generator_rng_bypasses_cache(trained_model, small_dataset):
    cache = ScoreCache()
    runner = SweepRunner(
        copy_levels=(1,), spf_levels=(1,), repeats=1, max_samples=10, cache=cache
    )
    runner.run(trained_model, small_dataset.test, rng=np.random.default_rng(0))
    # rng=None means fresh entropy per call — also never cached.
    runner.run(trained_model, small_dataset.test, rng=None)
    assert len(cache) == 0


def test_sweep_runner_cache_distinguishes_datasets(trained_model, small_dataset):
    # Two same-sized datasets with different contents must not collide.
    cache = ScoreCache()
    runner = SweepRunner(
        copy_levels=(1,), spf_levels=(1,), repeats=1, max_samples=20, cache=cache
    )
    runner.run(trained_model, small_dataset.test, rng=0)
    runner.run(trained_model, small_dataset.train, rng=0)
    assert cache.misses == 2 and cache.hits == 0 and len(cache) == 2


def test_model_fingerprint_distinguishes_weights(trained_model, small_dataset):
    other = TeaLearning(epochs=3, seed=1).train(
        trained_model.architecture, small_dataset
    ).model
    assert model_fingerprint(trained_model) == model_fingerprint(trained_model)
    assert model_fingerprint(trained_model) != model_fingerprint(other)


def test_score_cache_eviction_bounds_entries():
    cache = ScoreCache(max_entries=2)
    cache.put(("a",), [np.zeros(1)])
    cache.put(("b",), [np.zeros(1)])
    cache.put(("c",), [np.zeros(1)])
    assert len(cache) == 2
    assert cache.get(("a",)) is None  # oldest evicted
    assert cache.get(("c",)) is not None
    with pytest.raises(ValueError):
        ScoreCache(max_entries=0)


# ----------------------------------------------------------------------
# Bugfix: training-history alignment
# ----------------------------------------------------------------------
def test_history_records_nan_without_validation_data(small_architecture, small_dataset):
    from repro.nn.layers import Dense
    from repro.nn.network import Sequential
    from repro.nn.trainer import Trainer

    rng = np.random.default_rng(0)
    features, labels = rng.normal(size=(40, 4)), rng.integers(0, 2, size=40)
    history = Trainer(Sequential([Dense(4, 2, rng=0)])).fit(
        features, labels, epochs=3, rng=0
    )
    assert len(history.validation_accuracy) == 3
    assert all(np.isnan(v) for v in history.validation_accuracy)
    assert np.isnan(history.best_validation_accuracy())


def test_history_merge_aligns_lengths():
    first = TrainingHistory(
        train_loss=[1.0, 0.5],
        train_accuracy=[0.5, 0.6],
        validation_accuracy=[],  # legacy desynchronized history
        penalty=[0.0, 0.0],
    )
    second = TrainingHistory(
        train_loss=[0.4],
        train_accuracy=[0.7],
        validation_accuracy=[0.65],
        penalty=[0.1],
    )
    merged = first.merge(second)
    assert merged is first
    assert merged.epochs == 3
    assert len(merged.validation_accuracy) == 3
    assert np.isnan(merged.validation_accuracy[0])
    assert merged.validation_accuracy[2] == 0.65
    assert merged.best_validation_accuracy() == 0.65


def test_tea_history_lists_stay_synchronized(small_architecture, small_dataset):
    result = TeaLearning(epochs=4, seed=0).train(small_architecture, small_dataset)
    history = result.history
    assert history.epochs == 4
    assert len(history.train_loss) == 4
    assert len(history.train_accuracy) == 4
    assert len(history.validation_accuracy) == 4
    assert len(history.penalty) == 4
