"""Packaging configuration.

Metadata is defined here (rather than in a ``[project]`` table) so that
editable installs work in the offline environment this reproduction targets:
the available setuptools has no ``wheel`` package, which the PEP 517/660
editable path requires, while the classic ``setup.py``-based path does not.
``pyproject.toml`` carries only tool configuration (pytest).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of probability-biased learning for TrueNorth "
        "(Wen et al., DAC 2016): a neuro-synaptic core simulator, training "
        "framework, and co-optimization benchmarks"
    ),
    long_description=open("README.md", encoding="utf-8").read()
    if __import__("os").path.exists("README.md")
    else "",
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.21", "scipy>=1.7"],
    extras_require={
        "dev": ["pytest>=7.0", "pytest-benchmark>=4.0", "hypothesis>=6.0"],
    },
)
