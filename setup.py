"""Packaging configuration.

Metadata is defined here (rather than in a ``[project]`` table) so that
editable installs work in the offline environment this reproduction targets:
the available setuptools has no ``wheel`` package, which the PEP 517/660
editable path requires, while the classic ``setup.py``-based path does not.
``pyproject.toml`` carries only tool configuration (ruff).

The declared ``install_requires`` pins are the same specs CI installs
(see .github/actions/setup-repro/action.yml), so an installed package and
a CI checkout agree on the dependency floor.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Reproduction of probability-biased learning for TrueNorth "
        "(Wen et al., DAC 2016): a neuro-synaptic core simulator, training "
        "framework, co-optimization benchmarks, and an HTTP evaluation "
        "service over the unified backend API"
    ),
    long_description=open("README.md", encoding="utf-8").read()
    if __import__("os").path.exists("README.md")
    else "",
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    install_requires=["numpy>=1.21", "scipy>=1.7"],
    extras_require={
        "dev": [
            "pytest>=7.0",
            "pytest-benchmark>=4.0",
            "hypothesis>=6.0",
            "ruff",
            "mypy>=1.8",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro-serve = repro.serve.__main__:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
