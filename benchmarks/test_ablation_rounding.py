"""Ablation: stochastic Bernoulli sampling vs deterministic rounding at deployment.

The paper deploys by sampling each connection from its Bernoulli probability.
An alternative is deterministic rounding (connect iff p >= 0.5).  For a
Tea-trained model rounding collapses every mid-range probability to the same
value in *every* copy, so spatial duplication can no longer average the error
away; for a biased model the two coincide because probabilities already sit
at the poles.  This benchmark verifies both effects.
"""

import numpy as np
from conftest import run_once

from repro.mapping.corelet import build_corelets
from repro.mapping.deploy import DeployedNetwork
from repro.nn.metrics import accuracy_score
from repro.encoding.stochastic import StochasticEncoder


def rounded_deployment(model):
    """Deploy by deterministic rounding of the connection probabilities."""
    network = build_corelets(model)
    sampled = []
    for layer in network.corelets:
        sampled.append(
            [
                np.where(corelet.probabilities >= 0.5, corelet.synaptic_values, 0.0)
                for corelet in layer
            ]
        )
    return DeployedNetwork(corelet_network=network, sampled_weights=sampled)


def deployed_accuracy(deployed, dataset, rng):
    encoder = StochasticEncoder(spikes_per_frame=1)
    frames = encoder.encode(dataset.features, rng=rng)
    scores = deployed.class_scores(frames[0])
    return accuracy_score(dataset.labels, scores.argmax(axis=1))


def test_ablation_sampling_vs_rounding(benchmark, context, tea_result, biased_result):
    dataset = context.evaluation_dataset()

    def measure():
        from repro.eval.accuracy import evaluate_deployed_accuracy

        tea_sampled_16 = evaluate_deployed_accuracy(
            tea_result.model, dataset, copies=16, spikes_per_frame=1, repeats=2, rng=0
        ).mean_accuracy
        tea_rounded = deployed_accuracy(rounded_deployment(tea_result.model), dataset, rng=0)
        biased_rounded = deployed_accuracy(
            rounded_deployment(biased_result.model), dataset, rng=0
        )
        biased_sampled = evaluate_deployed_accuracy(
            biased_result.model, dataset, copies=1, spikes_per_frame=1, repeats=3, rng=0
        ).mean_accuracy
        return tea_sampled_16, tea_rounded, biased_rounded, biased_sampled

    tea_sampled_16, tea_rounded, biased_rounded, biased_sampled = run_once(
        benchmark, measure
    )
    print(
        f"\nAblation rounding | tea sampled x16 {tea_sampled_16:.3f} vs rounded {tea_rounded:.3f} | "
        f"biased sampled {biased_sampled:.3f} vs rounded {biased_rounded:.3f}"
    )
    # For the biased model, rounding and sampling agree closely (probabilities
    # already sit at the poles).
    assert abs(biased_rounded - biased_sampled) < 0.05
    # For the Tea model, 16 averaged stochastic copies beat a single rounded
    # deployment — the averaging workaround needs the sampling randomness.
    assert tea_sampled_16 > tea_rounded - 0.02
