"""Benchmark: regenerate Table 1 (dataset statistics)."""

from conftest import run_once

from repro.experiments.table1 import run_table1


def test_table1_datasets(benchmark):
    report = run_once(benchmark, run_table1, train_size=500, test_size=200, seed=0)
    print("\n" + report["table"])
    rows = {row["dataset"]: row for row in report["rows"]}
    # Structural columns match the paper exactly.
    assert rows["MNIST"]["feature_count"] == 784
    assert rows["MNIST"]["class_count"] == 10
    assert rows["MNIST"]["paper_training_size"] == 60000
    assert rows["MNIST"]["paper_testing_size"] == 10000
    assert rows["RS130"]["feature_count"] == 357
    assert rows["RS130"]["class_count"] == 3
    assert rows["RS130"]["paper_training_size"] == 17766
    assert rows["RS130"]["paper_testing_size"] == 6621
    # The synthetic stand-ins were actually generated at the requested size.
    assert rows["MNIST"]["generated_training_size"] == 500
    assert rows["RS130"]["generated_testing_size"] == 200
