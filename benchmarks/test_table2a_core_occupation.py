"""Benchmark: Table 2(a) — core occupation efficiency at matched accuracy.

Paper: at 1 spf, matching each Tea configuration (N#) with the cheapest
biased configuration (B#) of at least the same accuracy saves on average
49.5% of the cores, up to 68.8%, and the saving grows with the desired
accuracy level.
"""

from conftest import run_once

from repro.experiments.table2 import run_table2a


def test_table2a_core_occupation_efficiency(benchmark, context, tea_result, biased_result):
    report = run_once(
        benchmark,
        run_table2a,
        context,
        copy_levels=(1, 2, 3, 4, 5, 7, 9, 16),
        biased_copy_levels=(1, 2, 3, 4, 5),
        spf=1,
    )
    print("\n" + report["table"])
    print(
        f"Table 2(a) | average saving {100 * report['average_saved_fraction']:.1f}% "
        f"(paper 49.5%), max saving {100 * report['max_saved_fraction']:.1f}% "
        f"(paper 68.8%)"
    )
    matched = [row for row in report["rows"] if row.ours is not None]
    # The biased method matches at least some Tea accuracy levels.
    assert matched, "biased method never reached a Tea accuracy level"
    # Matched rows save cores on average, with a substantial best case.
    # (The paper reports 49.5% / 68.8%; the simulated substrate reproduces the
    # direction and a large effect, not the exact percentages.  The threshold
    # is calibrated against the corrected deployed scoring — the active-
    # synapse firing gate removed the spurious always-fire spikes of
    # all-OFF-sampled neurons, which shifted the measured savings slightly.)
    assert report["average_saved_fraction"] > 0.10
    assert report["max_saved_fraction"] > 0.3
    # Every match respects the accuracy-parity rule.
    for row in matched:
        assert row.ours.accuracy >= row.baseline.accuracy
        assert row.saved_fraction <= 1.0
