"""Benchmark: batched chip-simulation engine vs the per-sample tick loop.

Times the paper's "ground truth" path — cycle-accurate TrueNorth chip
simulation of a deployed test-bench network — on the batched engine
(:func:`repro.mapping.pipeline.run_chip_inference_batch`, one crossbar
matmul per core per tick for the whole batch) against the original
per-sample loop (:func:`repro.mapping.pipeline.run_chip_inference`, one
chip pass per sample), verifies the two per-sample class-count tensors and
the per-core spike counters are bit-identical, and records the result to a
JSON file for CI tracking.

A second section times the **multi-copy** engine: ``--copies C`` sampled
copies programmed side by side into one chip image and advanced as one
``C * samples`` lock-step batch
(:func:`repro.mapping.pipeline.run_chip_inference_multicopy`) against the
one-chip-per-copy loop (C ``program_chip`` + ``run_chip_inference_batch``
passes), again enforcing bit-identical per-copy class counts and per-core
spike counters.  Both records land in the same JSON file.

Usage::

    PYTHONPATH=src python benchmarks/bench_chip_engine.py --quick
    PYTHONPATH=src python benchmarks/bench_chip_engine.py \
        --samples 500 --spf 4 --copies 5 --output BENCH_chip.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time

import numpy as np

from repro.encoding.stochastic import StochasticEncoder
from repro.experiments.runner import ExperimentContext
from repro.mapping.deploy import deploy_model
from repro.mapping.duplication import deploy_with_copies
from repro.mapping.pipeline import (
    program_chip,
    program_chip_multicopy,
    run_chip_inference,
    run_chip_inference_batch,
    run_chip_inference_multicopy,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--testbench", type=int, default=1, help="Table 3 test bench")
    parser.add_argument("--samples", type=int, default=500, help="evaluated samples")
    parser.add_argument(
        "--spf", type=int, default=4, help="spikes per frame (input ticks per sample)"
    )
    parser.add_argument(
        "--train-size", type=int, default=600, help="training samples for the model"
    )
    parser.add_argument("--epochs", type=int, default=3, help="training epochs")
    parser.add_argument(
        "--batch-repeats",
        type=int,
        default=3,
        help="timing repeats of the batched path (best is reported)",
    )
    parser.add_argument(
        "--copies",
        type=int,
        default=10,
        help="sampled copies for the multi-copy engine section (0 disables)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke settings: fewer samples so CI finishes in seconds",
    )
    parser.add_argument(
        "--output", default="BENCH_chip.json", help="where to write the JSON record"
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    if args.quick:
        args.samples = min(args.samples, 60)
        args.train_size = min(args.train_size, 300)

    context = ExperimentContext(
        testbench=args.testbench,
        train_size=args.train_size,
        test_size=max(args.samples, 50),
        epochs=args.epochs,
        eval_samples=args.samples,
        repeats=1,
        seed=0,
    )
    model = context.result("tea").model
    dataset = context.evaluation_dataset()
    deployed = deploy_model(model, rng=0)
    chip, core_ids = program_chip(deployed)
    core_order = [core_id for layer in core_ids for core_id in layer]

    encoder = StochasticEncoder(spikes_per_frame=args.spf)
    volumes = encoder.encode(dataset.features, rng=0).transpose(1, 0, 2)
    volumes = np.ascontiguousarray(volumes)  # (samples, ticks, input_dim)
    samples = volumes.shape[0]

    start = time.perf_counter()
    loop_counts = np.zeros((samples, deployed.corelet_network.num_classes), np.int64)
    loop_spikes = np.zeros((samples, len(core_order)), dtype=np.int64)
    for index in range(samples):
        loop_counts[index] = run_chip_inference(
            chip, deployed, core_ids, volumes[index]
        )
        loop_spikes[index] = [chip.core(c).spike_count for c in core_order]
    loop_seconds = time.perf_counter() - start

    batch_times = []
    for _ in range(args.batch_repeats):
        start = time.perf_counter()
        batch_counts = run_chip_inference_batch(chip, deployed, core_ids, volumes)
        batch_times.append(time.perf_counter() - start)
    batch_seconds = min(batch_times)
    batch_spikes = np.stack(
        [chip.core(c).batch_spike_counts for c in core_order], axis=1
    )

    multicopy_record = None
    if args.copies > 0:
        multicopy_record = bench_multicopy(
            model, volumes, copies=args.copies, repeats=args.batch_repeats
        )

    counts_identical = bool(np.array_equal(loop_counts, batch_counts))
    spikes_identical = bool(np.array_equal(loop_spikes, batch_spikes))
    record = {
        "benchmark": "chip-engine",
        "config": {
            "testbench": args.testbench,
            "samples": int(samples),
            "spikes_per_frame": args.spf,
            "ticks_per_sample": int(volumes.shape[1]),
            "input_dim": int(volumes.shape[2]),
            "cores": len(core_order),
            "layers": len(core_ids),
            "router_delay": chip.router.delay,
            "quick": bool(args.quick),
            "batch_repeats": args.batch_repeats,
        },
        "loop_seconds": loop_seconds,
        "batch_seconds": batch_seconds,
        "speedup": loop_seconds / batch_seconds if batch_seconds else float("inf"),
        "class_counts_bit_identical": counts_identical,
        "spike_counters_bit_identical": spikes_identical,
        "multicopy": multicopy_record,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    if not counts_identical:
        raise SystemExit("batched class counts diverged from the per-sample loop")
    if not spikes_identical:
        raise SystemExit("batched spike counters diverged from the per-sample loop")
    if record["speedup"] < 1.0:
        raise SystemExit("batched engine slower than the per-sample loop")
    if multicopy_record is not None:
        if not multicopy_record["class_counts_bit_identical"]:
            raise SystemExit(
                "multi-copy class counts diverged from the per-copy loop"
            )
        if not multicopy_record["spike_counters_bit_identical"]:
            raise SystemExit(
                "multi-copy spike counters diverged from the per-copy loop"
            )
        if multicopy_record["speedup"] < 1.0:
            raise SystemExit("multi-copy engine slower than the per-copy loop")


def bench_multicopy(model, volumes: np.ndarray, copies: int, repeats: int) -> dict:
    """Time one multi-copy chip pass against the one-chip-per-copy loop.

    Both sides include chip programming (that is the end-to-end cost a
    (copies, spf) sweep pays per grid point) and both report per-copy class
    counts and per-core spike counters, compared bit for bit.
    """
    deployment = deploy_with_copies(model, copies=copies, rng=0)

    def percopy_pass():
        counts, spikes = [], []
        for copy in deployment.copies:
            chip, core_ids = program_chip(copy)
            counts.append(run_chip_inference_batch(chip, copy, core_ids, volumes))
            order = [cid for layer in core_ids for cid in layer]
            spikes.append(
                np.stack([chip.core(k).batch_spike_counts for k in order])
            )
        return np.stack(counts), np.stack(spikes)

    def multicopy_pass():
        chip, core_ids = program_chip_multicopy(deployment.copies)
        counts = run_chip_inference_multicopy(
            chip, deployment.copies, core_ids, volumes
        )
        order = [cid for layer in core_ids for cid in layer]
        spikes = np.stack(
            [chip.core(k).multicopy_spike_counts for k in order], axis=1
        )
        return counts, spikes

    def best_of(pass_fn):
        result, times = None, []
        for _ in range(repeats):
            start = time.perf_counter()
            result = pass_fn()
            times.append(time.perf_counter() - start)
        return result, min(times)

    (loop_counts, loop_spikes), percopy_seconds = best_of(percopy_pass)
    (multi_counts, multi_spikes), multicopy_seconds = best_of(multicopy_pass)

    return {
        "copies": int(copies),
        "percopy_seconds": percopy_seconds,
        "multicopy_seconds": multicopy_seconds,
        "speedup": (
            percopy_seconds / multicopy_seconds
            if multicopy_seconds
            else float("inf")
        ),
        "class_counts_bit_identical": bool(
            np.array_equal(loop_counts, multi_counts)
        ),
        "spike_counters_bit_identical": bool(
            np.array_equal(loop_spikes, multi_spikes)
        ),
    }


if __name__ == "__main__":
    main()
