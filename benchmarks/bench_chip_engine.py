"""Benchmark: batched chip-simulation engine vs the per-sample tick loop.

Times the paper's "ground truth" path — cycle-accurate TrueNorth chip
simulation of a deployed test-bench network — on the batched engine
(:func:`repro.mapping.pipeline.run_chip_inference_batch`, one crossbar
matmul per core per tick for the whole batch) against the original
per-sample loop (:func:`repro.mapping.pipeline.run_chip_inference`, one
chip pass per sample), verifies the two per-sample class-count tensors and
the per-core spike counters are bit-identical, and records the result to a
JSON file for CI tracking.

A second section times the **multi-copy** engine: ``--copies C`` sampled
copies programmed side by side into one chip image and advanced as one
``C * samples`` lock-step batch
(:func:`repro.mapping.pipeline.run_chip_inference_multicopy`) against the
one-chip-per-copy loop (C ``program_chip`` + ``run_chip_inference_batch``
passes), again enforcing bit-identical per-copy class counts and per-core
spike counters.  Both records land in the same JSON file.

A third section (``--grid``) times a full ``(copies, spf, repeats)``
**grid sweep**: the repeat-folded single-pass path (all repeats' copies in
one chip image, one pass per spf level, every copy level an exact cumsum
prefix — the engine behind :class:`repro.api.backends.ChipBackend`)
against the per-cell loop (one ``c``-copy program + pass per (copy level,
spf, repeat) grid cell), enforcing bit-identical class counts and spike
counters and recording ``grid_speedup``.

A fourth section (``--board``) times the **multi-chip board** engine at a
fixed copy count while the board grows: the same copies packed onto one
chip, spread one per chip over a mesh, and split two-chips-per-copy with
inter-chip link handoff (:func:`repro.mapping.pipeline.
run_board_inference_multicopy`), each verified bit-identical to the
single-chip multi-copy pass — the per-chip-count scaling record behind
the ``board`` backend.

Usage::

    PYTHONPATH=src python benchmarks/bench_chip_engine.py --quick --grid --board
    PYTHONPATH=src python benchmarks/bench_chip_engine.py \
        --samples 500 --spf 4 --copies 5 --output BENCH_chip.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time

import numpy as np

from repro.encoding.stochastic import StochasticEncoder
from repro.experiments.runner import ExperimentContext
from repro.mapping.deploy import deploy_model
from repro.mapping.duplication import deploy_with_copies
from repro.mapping.pipeline import (
    program_chip,
    program_chip_multicopy,
    run_chip_inference,
    run_chip_inference_batch,
    run_chip_inference_multicopy,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--testbench", type=int, default=1, help="Table 3 test bench")
    parser.add_argument("--samples", type=int, default=500, help="evaluated samples")
    parser.add_argument(
        "--spf", type=int, default=4, help="spikes per frame (input ticks per sample)"
    )
    parser.add_argument(
        "--train-size", type=int, default=600, help="training samples for the model"
    )
    parser.add_argument("--epochs", type=int, default=3, help="training epochs")
    parser.add_argument(
        "--batch-repeats",
        type=int,
        default=3,
        help="timing repeats of the batched path (best is reported)",
    )
    parser.add_argument(
        "--copies",
        type=int,
        default=10,
        help="sampled copies for the multi-copy engine section (0 disables)",
    )
    parser.add_argument(
        "--grid",
        action="store_true",
        help="also benchmark the repeat-folded grid sweep vs the cell loop",
    )
    parser.add_argument(
        "--grid-repeats",
        type=int,
        default=8,
        help="repeats axis of the --grid sweep (the folded pass stacks all "
        "repeats' copies into one chip image per spf level)",
    )
    parser.add_argument(
        "--grid-copies",
        type=int,
        default=16,
        help="copies axis of the --grid sweep: copy levels 1..C, all served "
        "as cumsum prefixes of the one folded pass",
    )
    parser.add_argument(
        "--board",
        action="store_true",
        help="also benchmark the multi-chip board engine per chip count "
        "at fixed copies",
    )
    parser.add_argument(
        "--board-copies",
        type=int,
        default=4,
        help="fixed copies of the --board section (the board grows, the "
        "workload does not)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke settings: fewer samples so CI finishes in seconds",
    )
    parser.add_argument(
        "--output", default="BENCH_chip.json", help="where to write the JSON record"
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    if args.quick:
        args.samples = min(args.samples, 60)
        args.train_size = min(args.train_size, 300)

    context = ExperimentContext(
        testbench=args.testbench,
        train_size=args.train_size,
        test_size=max(args.samples, 50),
        epochs=args.epochs,
        eval_samples=args.samples,
        repeats=1,
        seed=0,
    )
    model = context.result("tea").model
    dataset = context.evaluation_dataset()
    deployed = deploy_model(model, rng=0)
    chip, core_ids = program_chip(deployed)
    core_order = [core_id for layer in core_ids for core_id in layer]

    encoder = StochasticEncoder(spikes_per_frame=args.spf)
    volumes = encoder.encode(dataset.features, rng=0).transpose(1, 0, 2)
    volumes = np.ascontiguousarray(volumes)  # (samples, ticks, input_dim)
    samples = volumes.shape[0]

    start = time.perf_counter()
    loop_counts = np.zeros((samples, deployed.corelet_network.num_classes), np.int64)
    loop_spikes = np.zeros((samples, len(core_order)), dtype=np.int64)
    for index in range(samples):
        loop_counts[index] = run_chip_inference(
            chip, deployed, core_ids, volumes[index]
        )
        loop_spikes[index] = [chip.core(c).spike_count for c in core_order]
    loop_seconds = time.perf_counter() - start

    batch_times = []
    for _ in range(args.batch_repeats):
        start = time.perf_counter()
        batch_counts = run_chip_inference_batch(chip, deployed, core_ids, volumes)
        batch_times.append(time.perf_counter() - start)
    batch_seconds = min(batch_times)
    batch_spikes = np.stack(
        [chip.core(c).batch_spike_counts for c in core_order], axis=1
    )

    multicopy_record = None
    if args.copies > 0:
        multicopy_record = bench_multicopy(
            model, volumes, copies=args.copies, repeats=args.batch_repeats
        )

    board_record = None
    if args.board:
        board_record = bench_board(
            model, volumes, copies=args.board_copies, repeats=args.batch_repeats
        )

    grid_record = None
    if args.grid:
        grid_record = bench_grid(
            model,
            dataset,
            spf_levels=tuple(sorted({1, 2, args.spf})),
            copies=args.grid_copies,
            repeats=args.grid_repeats,
            best_of=args.batch_repeats,
        )

    counts_identical = bool(np.array_equal(loop_counts, batch_counts))
    spikes_identical = bool(np.array_equal(loop_spikes, batch_spikes))
    record = {
        "benchmark": "chip-engine",
        "config": {
            "testbench": args.testbench,
            "samples": int(samples),
            "spikes_per_frame": args.spf,
            "ticks_per_sample": int(volumes.shape[1]),
            "input_dim": int(volumes.shape[2]),
            "cores": len(core_order),
            "layers": len(core_ids),
            "router_delay": chip.router.delay,
            "quick": bool(args.quick),
            "batch_repeats": args.batch_repeats,
        },
        "loop_seconds": loop_seconds,
        "batch_seconds": batch_seconds,
        "speedup": loop_seconds / batch_seconds if batch_seconds else float("inf"),
        "class_counts_bit_identical": counts_identical,
        "spike_counters_bit_identical": spikes_identical,
        "multicopy": multicopy_record,
        "grid": grid_record,
        "board": board_record,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    if not counts_identical:
        raise SystemExit("batched class counts diverged from the per-sample loop")
    if not spikes_identical:
        raise SystemExit("batched spike counters diverged from the per-sample loop")
    if record["speedup"] < 1.0:
        raise SystemExit("batched engine slower than the per-sample loop")
    if multicopy_record is not None:
        if not multicopy_record["class_counts_bit_identical"]:
            raise SystemExit(
                "multi-copy class counts diverged from the per-copy loop"
            )
        if not multicopy_record["spike_counters_bit_identical"]:
            raise SystemExit(
                "multi-copy spike counters diverged from the per-copy loop"
            )
        if multicopy_record["speedup"] < 1.0:
            raise SystemExit("multi-copy engine slower than the per-copy loop")
    if grid_record is not None:
        if not grid_record["class_counts_bit_identical"]:
            raise SystemExit("grid class counts diverged from the cell loop")
        if not grid_record["spike_counters_bit_identical"]:
            raise SystemExit("grid spike counters diverged from the cell loop")
        if grid_record["grid_speedup"] < 1.0:
            raise SystemExit("single-pass grid slower than the cell loop")
    if board_record is not None:
        for point in board_record["points"]:
            if not point["class_counts_bit_identical"]:
                raise SystemExit(
                    f"board counts at {point['chips']} chips diverged from "
                    "the single-chip multi-copy pass"
                )


def bench_multicopy(model, volumes: np.ndarray, copies: int, repeats: int) -> dict:
    """Time one multi-copy chip pass against the one-chip-per-copy loop.

    Both sides include chip programming (that is the end-to-end cost a
    (copies, spf) sweep pays per grid point) and both report per-copy class
    counts and per-core spike counters, compared bit for bit.
    """
    deployment = deploy_with_copies(model, copies=copies, rng=0)

    def percopy_pass():
        counts, spikes = [], []
        for copy in deployment.copies:
            chip, core_ids = program_chip(copy)
            counts.append(run_chip_inference_batch(chip, copy, core_ids, volumes))
            order = [cid for layer in core_ids for cid in layer]
            spikes.append(
                np.stack([chip.core(k).batch_spike_counts for k in order])
            )
        return np.stack(counts), np.stack(spikes)

    def multicopy_pass():
        chip, core_ids = program_chip_multicopy(deployment.copies)
        counts = run_chip_inference_multicopy(
            chip, deployment.copies, core_ids, volumes
        )
        order = [cid for layer in core_ids for cid in layer]
        spikes = np.stack(
            [chip.core(k).multicopy_spike_counts for k in order], axis=1
        )
        return counts, spikes

    def best_of(pass_fn):
        result, times = None, []
        for _ in range(repeats):
            start = time.perf_counter()
            result = pass_fn()
            times.append(time.perf_counter() - start)
        return result, min(times)

    (loop_counts, loop_spikes), percopy_seconds = best_of(percopy_pass)
    (multi_counts, multi_spikes), multicopy_seconds = best_of(multicopy_pass)

    return {
        "copies": int(copies),
        "percopy_seconds": percopy_seconds,
        "multicopy_seconds": multicopy_seconds,
        "speedup": (
            percopy_seconds / multicopy_seconds
            if multicopy_seconds
            else float("inf")
        ),
        "class_counts_bit_identical": bool(
            np.array_equal(loop_counts, multi_counts)
        ),
        "spike_counters_bit_identical": bool(
            np.array_equal(loop_spikes, multi_spikes)
        ),
    }


def bench_board(model, volumes: np.ndarray, copies: int, repeats: int) -> dict:
    """Time the board engine per chip count at a fixed copy workload.

    The workload (``copies`` sampled copies, the full encoded volume) stays
    fixed while the board grows: all copies packed onto one chip (the 1x1
    identity configuration), one copy per chip across a mesh, and every
    copy split over two chips with link handoff at the layer boundary.
    Every configuration's per-copy class counts are compared bit for bit
    against the single-chip multi-copy pass, so the record tracks pure
    board-engine overhead, not drift.
    """
    from repro.board import BoardConfig, board_shape_for
    from repro.mapping.pipeline import (
        program_board_multicopy,
        run_board_inference_multicopy,
    )
    from repro.truenorth.config import ChipConfig

    deployment = deploy_with_copies(model, copies=copies, rng=0)
    cores = deployment.corelet_network.core_count

    chip, core_ids = program_chip_multicopy(deployment.copies)
    start = time.perf_counter()
    reference = run_chip_inference_multicopy(
        chip, deployment.copies, core_ids, volumes
    )
    single_chip_seconds = time.perf_counter() - start

    rows = int(np.ceil(np.sqrt(cores))) or 1
    cols = max(int(np.ceil(cores / rows)), 1)
    packed = ChipConfig(grid_shape=(int(np.ceil(copies * cores / cols)), cols))
    configurations = [
        ("packed", BoardConfig(grid_shape=(1, 1), chip_config=packed)),
        (
            "copy-per-chip",
            BoardConfig(
                grid_shape=board_shape_for(
                    cores, copies, ChipConfig(grid_shape=(1, cores))
                ),
                chip_config=ChipConfig(grid_shape=(1, cores)),
            ),
        ),
        (
            "split",
            BoardConfig(
                grid_shape=board_shape_for(
                    cores, copies, ChipConfig(grid_shape=(1, (cores + 1) // 2))
                ),
                chip_config=ChipConfig(grid_shape=(1, (cores + 1) // 2)),
                link_delay=1,
            ),
        ),
    ]

    points = []
    for label, config in configurations:
        board, program = program_board_multicopy(deployment.copies, config)
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            counts = run_board_inference_multicopy(
                board, deployment.copies, program, volumes
            )
            times.append(time.perf_counter() - start)
        stats = program.placement.mesh_statistics()
        points.append(
            {
                "placement": label,
                "board_shape": list(config.grid_shape),
                "chips": program.placement.occupied_chips(),
                "chip_capacity": config.chip_config.capacity,
                "link_delay": config.link_delay,
                "split_copies": stats["split_copies"],
                "link_spikes": int(board.fabric.spikes_carried),
                "seconds": min(times),
                "class_counts_bit_identical": bool(
                    np.array_equal(reference, counts)
                ),
            }
        )

    return {
        "copies": int(copies),
        "cores_per_copy": int(cores),
        "single_chip_seconds": single_chip_seconds,
        "points": points,
    }


def bench_grid(
    model, dataset, spf_levels: tuple, copies: int, repeats: int, best_of: int
) -> dict:
    """Time a (copies, spf, repeats) sweep: single-pass grid vs cell loop.

    The cell loop evaluates every cell of the grid independently — one
    ``program_chip_multicopy`` + inference pass per (copy level, spf level,
    repeat) cell, ``c`` copies programmed for copy level ``c`` — which is
    what a sweep costs without the cumsum prefix reuse and repeat folding.
    The grid side programs all repeats' copies side by side and serves the
    whole grid from one folded pass per spf level, exactly as
    :class:`repro.api.backends.ChipBackend` does.  Both sides start from
    the same prepared deployments and encoded volumes (that per-(spf,
    repeat) preparation is identical either way, drawn from the canonical
    ``spawn_rngs`` randomness layout the backend clones per level), so the
    timings isolate the chip engine.  Class counts of every grid cell and
    per-copy spike counters at the max spf level are compared bit for bit.
    """
    from repro.mapping.corelet import build_corelets
    from repro.utils.rng import new_rng, spawn_rngs

    network = build_corelets(model)
    prepared = []  # per level: [(deployment, (ticks, batch, input)), ...]
    for spf in spf_levels:
        encoder = StochasticEncoder(spikes_per_frame=spf)
        level = []
        for repeat_rng in spawn_rngs(new_rng(0), repeats):
            deployment = deploy_with_copies(
                model, copies=copies, rng=repeat_rng, corelet_network=network
            )
            frames = encoder.encode(dataset.features, rng=repeat_rng)
            level.append(
                (deployment, np.ascontiguousarray(frames.transpose(1, 0, 2)))
            )
        prepared.append(level)

    def cell_pass():
        counts, counters = [], None
        for level in prepared:
            level_cells = []
            for deployment, volumes in level:
                cells = []
                for c in range(1, copies + 1):
                    prefix = deployment.copies[:c]
                    chip, core_ids = program_chip_multicopy(prefix)
                    cell = run_chip_inference_multicopy(
                        chip, prefix, core_ids, volumes
                    )
                    cells.append(cell.sum(axis=0))
                    if c == copies:
                        order = [k for layer in core_ids for k in layer]
                        percopy = np.stack(
                            [chip.core(k).multicopy_spike_counts for k in order],
                            axis=1,
                        )
                level_cells.append((np.stack(cells), percopy))
            counts.append(np.stack([cells for cells, _ in level_cells]))
            counters = np.stack([percopy for _, percopy in level_cells])
        # stack levels onto axis 2: (R, C, levels, batch, classes)
        return np.stack(counts, axis=2), counters

    def grid_pass():
        counts, counters = [], None
        for level in prepared:
            flat = [copy for deployment, _ in level for copy in deployment.copies]
            volumes = np.stack([vol for _, vol in level])
            chip, core_ids = program_chip_multicopy(flat)
            raw = run_chip_inference_multicopy(chip, flat, core_ids, volumes)
            raw = raw.reshape((repeats, copies) + raw.shape[1:])
            counts.append(np.cumsum(raw, axis=1))
            order = [k for layer in core_ids for k in layer]
            stacked = np.stack(
                [chip.core(k).multicopy_spike_counts for k in order], axis=1
            )
            counters = stacked.reshape((repeats, copies) + stacked.shape[1:])
        return np.stack(counts, axis=2), counters

    def best(pass_fn):
        result, times = None, []
        for _ in range(best_of):
            start = time.perf_counter()
            result = pass_fn()
            times.append(time.perf_counter() - start)
        return result, min(times)

    (cell_grid, cell_counters), cell_seconds = best(cell_pass)
    (grid_counts, grid_counters), grid_seconds = best(grid_pass)

    return {
        "copies": int(copies),
        "spf_levels": [int(s) for s in spf_levels],
        "repeats": int(repeats),
        "cell_loop_seconds": cell_seconds,
        "grid_seconds": grid_seconds,
        "grid_speedup": (
            cell_seconds / grid_seconds if grid_seconds else float("inf")
        ),
        "class_counts_bit_identical": bool(
            np.array_equal(grid_counts, cell_grid)
        ),
        "spike_counters_bit_identical": bool(
            np.array_equal(grid_counters, cell_counters)
        ),
    }


if __name__ == "__main__":
    main()
