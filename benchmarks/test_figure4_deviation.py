"""Benchmark: Figure 4 — synaptic weight deviation maps.

Paper: without the biasing penalty 24.01% of a core's synapses deviate from
the desired weight by more than 50% of the maximum synaptic weight; with the
biasing penalty 98.45% of synapses have zero deviation and fewer than 0.02%
deviate by more than 50%.
"""

from conftest import run_once

from repro.experiments.figure4 import run_figure4


def test_figure4_deviation_maps(benchmark, context, tea_result, biased_result):
    report = run_once(benchmark, run_figure4, context)
    tea = report["tea"]
    biased = report["biased"]
    print(
        f"\nFigure 4 | tea >50% deviation {tea['above_half_fraction']:.4f} "
        f"(paper 0.2401), zero {tea['zero_fraction']:.4f} | "
        f"biased zero {biased['zero_fraction']:.4f} (paper 0.9845), "
        f">50% {biased['above_half_fraction']:.5f} (paper <0.0002)"
    )
    # Tea deployment has substantial deviation mass above 50%.
    assert tea["above_half_fraction"] > 0.1
    # The biased model's deployment is overwhelmingly deviation-free.
    assert biased["zero_fraction"] > 0.6
    assert biased["zero_fraction"] > tea["zero_fraction"] + 0.4
    assert biased["above_half_fraction"] < tea["above_half_fraction"] / 3
    assert biased["mean_deviation"] < tea["mean_deviation"] / 3
