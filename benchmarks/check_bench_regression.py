"""CI gate: compare fresh benchmark records against committed baselines.

Benchmarks (``bench_eval_engine.py``, ``bench_chip_engine.py``) emit JSON
records carrying two kinds of gateable facts:

* ``*bit_identical`` booleans — the engine's exactness promises.  A fresh
  record must still say ``true`` everywhere the baseline does; a lost
  bit-identity is always a failure.
* ``speedup`` ratios — engine time relative to the per-sample loop *on
  the same machine*, so they are hardware-normalized to first order and
  comparable across runners where absolute seconds are not.  A fresh
  speedup below ``baseline / --max-regression`` (default 2x) fails.

Baselines live in ``benchmarks/baselines/`` and are generated with the
exact flags the CI bench job uses (``--quick`` mode).  To refresh them
after an intentional perf change::

    PYTHONPATH=src python benchmarks/bench_eval_engine.py --quick \
        --output BENCH_eval.json
    PYTHONPATH=src python benchmarks/bench_chip_engine.py --quick \
        --grid --board --output BENCH_chip.json
    PYTHONPATH=src python benchmarks/bench_chip_engine.py --quick \
        --testbench 5 --output BENCH_chip_tb5.json
    PYTHONPATH=src python benchmarks/check_bench_regression.py \
        --pair BENCH_eval.json benchmarks/baselines/BENCH_eval.json \
        --pair BENCH_chip.json benchmarks/baselines/BENCH_chip.json \
        --pair BENCH_chip_tb5.json benchmarks/baselines/BENCH_chip_tb5.json \
        --update

and commit the rewritten baselines with a line in the PR body saying why
the ratio moved.  Without ``--update`` the script only checks: exit 0
when every pair passes, exit 1 with one line per violation otherwise.
"""

from __future__ import annotations

import argparse
import json
import shutil
from typing import Dict, List, Tuple


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pair",
        nargs=2,
        action="append",
        metavar=("FRESH", "BASELINE"),
        required=True,
        help="fresh record + committed baseline to compare (repeatable)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail when a fresh speedup drops below baseline/THIS",
    )
    parser.add_argument(
        "--output", default=None, help="optional path for the JSON report"
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy each fresh record over its baseline instead of checking",
    )
    return parser.parse_args()


def is_speedup_key(key: str) -> bool:
    return key == "speedup" or key.endswith("_speedup")


def is_identity_key(key: str) -> bool:
    return key.endswith("bit_identical")


def compare_nodes(
    path: str,
    baseline: object,
    fresh: object,
    max_regression: float,
    problems: List[str],
    ratios: List[Dict[str, object]],
) -> None:
    """Walk the baseline record, gating every identity/speedup fact the
    fresh record must still carry.  Extra fresh-only keys are ignored —
    new facts gate only once they land in the committed baseline."""
    if isinstance(baseline, dict):
        if not isinstance(fresh, dict):
            problems.append(f"{path}: fresh record lost this section")
            return
        for key, base_value in baseline.items():
            child = f"{path}.{key}" if path else key
            if is_identity_key(key):
                if fresh.get(key) is not True:
                    problems.append(
                        f"{child}: bit-identity lost "
                        f"(baseline {base_value}, fresh {fresh.get(key)!r})"
                    )
            elif is_speedup_key(key) and isinstance(base_value, (int, float)):
                fresh_value = fresh.get(key)
                if not isinstance(fresh_value, (int, float)):
                    problems.append(f"{child}: speedup missing from fresh record")
                    continue
                ratios.append(
                    {"path": child, "baseline": base_value, "fresh": fresh_value}
                )
                if fresh_value * max_regression < base_value:
                    problems.append(
                        f"{child}: speedup regressed more than "
                        f"{max_regression}x (baseline {base_value:.2f}, "
                        f"fresh {fresh_value:.2f})"
                    )
            elif isinstance(base_value, (dict, list)):
                compare_nodes(
                    child,
                    base_value,
                    fresh.get(key),
                    max_regression,
                    problems,
                    ratios,
                )
    elif isinstance(baseline, list):
        if not isinstance(fresh, list) or len(fresh) < len(baseline):
            problems.append(f"{path}: fresh record dropped list entries")
            return
        for index, base_item in enumerate(baseline):
            compare_nodes(
                f"{path}[{index}]",
                base_item,
                fresh[index],
                max_regression,
                problems,
                ratios,
            )


def check_pair(
    fresh_path: str, baseline_path: str, max_regression: float
) -> Tuple[List[str], List[Dict[str, object]]]:
    problems: List[str] = []
    ratios: List[Dict[str, object]] = []
    try:
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return [f"{baseline_path}: unreadable baseline ({error})"], ratios
    try:
        with open(fresh_path, encoding="utf-8") as handle:
            fresh = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return [f"{fresh_path}: unreadable fresh record ({error})"], ratios

    # Ratio comparisons only mean something when the workloads match.
    base_config = baseline.get("config") if isinstance(baseline, dict) else None
    fresh_config = fresh.get("config") if isinstance(fresh, dict) else None
    if base_config != fresh_config:
        problems.append(
            f"{fresh_path}: benchmark config differs from baseline "
            f"({fresh_config!r} vs {base_config!r}) — regenerate the "
            "baseline with the CI flags"
        )
        return problems, ratios
    compare_nodes("", baseline, fresh, max_regression, problems, ratios)
    return problems, ratios


def main() -> None:
    args = parse_args()
    if args.update:
        for fresh_path, baseline_path in args.pair:
            shutil.copyfile(fresh_path, baseline_path)
            print(f"updated {baseline_path} from {fresh_path}")
        return

    report: Dict[str, object] = {"max_regression": args.max_regression}
    failures: List[str] = []
    pairs: List[Dict[str, object]] = []
    for fresh_path, baseline_path in args.pair:
        problems, ratios = check_pair(fresh_path, baseline_path, args.max_regression)
        failures.extend(problems)
        pairs.append(
            {
                "fresh": fresh_path,
                "baseline": baseline_path,
                "speedups": ratios,
                "problems": problems,
            }
        )
    report["pairs"] = pairs
    report["ok"] = not failures
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    print(json.dumps(report, indent=2))
    if failures:
        raise SystemExit("; ".join(failures))


if __name__ == "__main__":
    main()
