"""Ablation: the regularization coefficient lambda of Eq. (16).

Sweeps the biasing-penalty weight and verifies the expected trade-off: a
larger lambda concentrates more probability mass at the poles (lower
deployment variance) but, pushed far enough, costs float accuracy.
"""

from conftest import run_once

from repro.core.biased import ProbabilityBiasedLearning
from repro.core.penalties import pole_fraction

LAMBDAS = (0.0001, 0.0003, 0.003)


def test_ablation_penalty_weight_sweep(benchmark, context):
    def measure():
        results = {}
        for lam in LAMBDAS:
            learner = ProbabilityBiasedLearning(
                epochs=context.epochs, seed=context.seed, penalty_weight=lam
            )
            results[lam] = learner.train(context.architecture(), context.splits())
        return results

    results = run_once(benchmark, measure)
    poles = {lam: pole_fraction(r.model.all_probabilities()) for lam, r in results.items()}
    accuracies = {lam: r.float_accuracy for lam, r in results.items()}
    print("\nAblation lambda | " + " | ".join(
        f"{lam}: pole {poles[lam]:.3f}, float {accuracies[lam]:.3f}" for lam in LAMBDAS
    ))
    # Pole concentration is monotone in lambda.
    assert poles[LAMBDAS[0]] <= poles[LAMBDAS[1]] + 0.02
    assert poles[LAMBDAS[1]] <= poles[LAMBDAS[2]] + 0.02
    assert poles[LAMBDAS[2]] > 0.9
    # Even the strongest lambda keeps the model usable (well above chance).
    assert min(accuracies.values()) > 0.5
