"""CI smoke: the HTTP evaluation service under a concurrent mixed burst.

Boots :class:`repro.serve.EvalServer` on an ephemeral port, fires a
concurrent burst of mixed vectorized/chip wire requests through
:class:`repro.serve.client.ServeClient`, and exits non-zero when any of the
service promises breaks:

* **bit-identity** — every served response equals a direct
  ``Session.evaluate`` of the same request, to the last bit (scores,
  accuracy, labels, integer class counts, chip spike counters);
* **overload** — a full admission queue answers 429 with ``Retry-After``
  and shutdown resolves every admitted request (no deadlock, no silent
  drop);
* **metrics** — the ``/metrics`` conservation invariants hold:
  ``received == admitted + rejected`` and
  ``admitted == completed + failed + in_flight``.

``--soak`` switches to the durability harness instead: a sustained mixed
burst (with client-side ``Retry-After`` back-off) driven through overload
against an adaptive-admission server with a request journal, followed by a
mid-run server restart that must warm from the journal and answer the
repeated burst without a single fresh engine pass — all while the
``/metrics`` conservation invariants hold and the observed p95 stays
within the controller target.

``--soak --fleet N`` runs the *fleet* drill instead: N journaled replicas
behind one front router (:mod:`repro.serve.front`).  A warm wave routes
through the front (bit-identical to direct ``Session.evaluate``), then the
hosted model's home replica is killed in the middle of a concurrent burst
— which must be absorbed by deterministic failover with **zero**
client-visible 5xx — then the victim restarts on its old port, rejoins the
ring, warms from its journal, and the repeated burst must cost zero fresh
engine passes fleet-wide.  Throughout, the front's aggregated ``/metrics``
must conserve: ``received == admitted + rejected`` fleet-wide, and the
front's own ``received == routed + shed + unavailable``.

Usage::

    PYTHONPATH=src python benchmarks/smoke_serve.py --output SMOKE_serve.json
    PYTHONPATH=src python benchmarks/smoke_serve.py --soak \
        --worker-mode process --output SMOKE_serve_soak.json
    PYTHONPATH=src python benchmarks/smoke_serve.py --soak --fleet 3 \
        --output SMOKE_serve_fleet.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import threading
import time

import numpy as np

from repro.api import EvalRequest, Session
from repro.eval.runner import ScoreCache
from repro.experiments.runner import ExperimentContext
from repro.serve import (
    EvalServer,
    FrontConfig,
    FrontServer,
    ModelRegistry,
    RequestJournal,
    ServeClient,
    ServeConfig,
    ServiceOverloadedError,
    ServiceUnavailableError,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--train-size", type=int, default=200, help="training samples for the model"
    )
    parser.add_argument("--epochs", type=int, default=2, help="training epochs")
    parser.add_argument(
        "--samples", type=int, default=40, help="evaluated samples per request"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="service worker threads"
    )
    parser.add_argument(
        "--output", default=None, help="optional path for the JSON record"
    )
    parser.add_argument(
        "--soak",
        action="store_true",
        help="run the soak harness (overload + restart + journal warm) "
        "instead of the plain smoke",
    )
    parser.add_argument(
        "--soak-waves",
        type=int,
        default=3,
        help="sustained burst waves before the mid-run restart",
    )
    parser.add_argument(
        "--worker-mode",
        choices=("thread", "process"),
        default="thread",
        help="soak worker mode (process exercises the spawn pool)",
    )
    parser.add_argument(
        "--target-p95",
        type=float,
        default=20.0,
        help="soak controller p95 target in seconds",
    )
    parser.add_argument(
        "--fleet",
        type=int,
        default=0,
        help="with --soak: boot N replicas behind a front router and run "
        "the kill/restart fleet drill (0 = single-server soak)",
    )
    return parser.parse_args()


def burst_payloads(samples: int):
    """A mixed burst: vectorized grids (coalescible sub-grids) + chip requests."""
    payloads = []
    for copy_levels in ([1], [1, 2], [2], [1, 2]):
        payloads.append(
            {
                "model": "tea",
                "backend": "vectorized",
                "copy_levels": copy_levels,
                "spf_levels": [1, 2],
                "repeats": 2,
                "seed": 0,
                "max_samples": samples,
            }
        )
    for seed, collect in ((0, True), (1, False)):
        payloads.append(
            {
                "model": "tea",
                "backend": "chip",
                "copy_levels": [1, 2],
                "spf_levels": [2],
                "repeats": 1,
                "seed": seed,
                "max_samples": samples,
                "collect_spike_counters": collect,
            }
        )
    # auto-routed: the capability flags pick the chip backend server-side.
    payloads.append(
        {
            "model": "tea",
            "copy_levels": [2],
            "spf_levels": [1],
            "seed": 2,
            "max_samples": samples,
            "collect_spike_counters": True,
        }
    )
    return payloads


def check_metrics_invariants(metrics, failures, where: str) -> None:
    requests = metrics["requests"]
    if requests["received"] != requests["admitted"] + requests["rejected"]:
        failures.append(f"{where}: received != admitted + rejected ({requests})")
    if requests["admitted"] != (
        requests["completed"] + requests["failed"] + requests["in_flight"]
    ):
        failures.append(
            f"{where}: admitted != completed + failed + in_flight ({requests})"
        )
    p50 = requests["latency_p50_seconds"]
    p95 = requests["latency_p95_seconds"]
    if p50 is not None and p95 is not None and p50 > p95:
        failures.append(f"{where}: latency p50 {p50} > p95 {p95}")


def run_burst(server, registry, payloads, failures):
    """Fire all payloads concurrently, then re-check each against a direct
    Session.evaluate of the identical request."""
    client = ServeClient(port=server.port, timeout=600.0)
    responses = {}

    def fire(index, payload):
        try:
            responses[index] = client.evaluate_payload(payload)
        except Exception as error:
            responses[index] = error

    threads = [
        threading.Thread(target=fire, args=(index, payload))
        for index, payload in enumerate(payloads)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    seconds = time.perf_counter() - start
    if any(thread.is_alive() for thread in threads):
        failures.append("burst: a request thread is still alive (hang)")
        return seconds
    verify_bit_identical(responses, registry, payloads, failures, "burst")
    return seconds


def verify_bit_identical(responses, registry, payloads, failures, where):
    """Compare each served response against a direct Session.evaluate."""
    direct_session = Session(cache=ScoreCache())
    for index, payload in enumerate(payloads):
        served = responses.get(index)
        if isinstance(served, Exception):
            failures.append(f"{where} request {index} failed: {served!r}")
            continue
        request = EvalRequest(
            model=registry.model(payload["model"]),
            dataset=registry.dataset("test"),
            copy_levels=tuple(payload["copy_levels"]),
            spf_levels=tuple(payload["spf_levels"]),
            repeats=payload.get("repeats", 1),
            seed=payload["seed"],
            max_samples=payload.get("max_samples"),
            collect_spike_counters=payload.get("collect_spike_counters", False),
        )
        direct = direct_session.evaluate(request, backend=payload.get("backend"))
        if served.backend != direct.backend:
            failures.append(
                f"{where} request {index}: backend {served.backend!r} != "
                f"{direct.backend!r}"
            )
        for name in ("scores", "accuracy", "labels"):
            if not np.array_equal(getattr(served, name), getattr(direct, name)):
                failures.append(
                    f"{where} request {index}: served {name} diverged from "
                    "direct Session.evaluate"
                )
        if not np.array_equal(served.class_counts(), direct.class_counts()):
            failures.append(f"{where} request {index}: class counts diverged")
        if (served.spike_counters is None) != (direct.spike_counters is None):
            failures.append(f"{where} request {index}: spike counter presence differs")
        elif served.spike_counters is not None and not np.array_equal(
            served.spike_counters, direct.spike_counters
        ):
            failures.append(f"{where} request {index}: spike counters diverged")


def run_overload(registry, failures):
    """Deterministic shedding: a frozen pool (workers=0) with queue depth 2.

    Two admitted requests park in the queue, the rest of the burst must be
    shed with 429 + Retry-After, and closing the server must resolve the
    parked requests with 503 instead of leaving their clients hanging.
    """
    config = ServeConfig(port=0, workers=0, queue_depth=2)
    server = EvalServer(registry, config).start()
    client = ServeClient(port=server.port, timeout=120.0)
    outcomes = {}

    def fire(index):
        try:
            outcomes[index] = client.evaluate(model="tea", seed=index)
        except Exception as error:
            outcomes[index] = error

    parked = []
    try:
        for index in range(2):
            thread = threading.Thread(target=fire, args=(index,))
            thread.start()
            parked.append(thread)
        for _ in range(200):
            if client.metrics()["requests"]["queue_depth"] == 2:
                break
            time.sleep(0.02)
        else:
            failures.append("overload: queue never filled to depth 2")

        rejections = 0
        for index in range(2, 6):
            try:
                client.evaluate(model="tea", seed=index)
                failures.append(f"overload: request {index} was not shed")
            except ServiceOverloadedError as error:
                rejections += 1
                if error.retry_after < 1:
                    failures.append(
                        f"overload: Retry-After {error.retry_after} < 1s"
                    )
            except Exception as error:
                failures.append(f"overload: request {index} got {error!r}")
        if rejections != 4:
            failures.append(f"overload: expected 4 rejections, got {rejections}")
        metrics = client.metrics()
        check_metrics_invariants(metrics, failures, "overload")
        if metrics["requests"]["rejected"] != 4:
            failures.append(
                f"overload: /metrics rejected={metrics['requests']['rejected']}"
            )
    finally:
        server.close()
        for thread in parked:
            thread.join(timeout=30)
    if any(thread.is_alive() for thread in parked):
        failures.append("overload: a parked client is still waiting (hang)")
    for index in range(2):
        if not isinstance(outcomes.get(index), ServiceUnavailableError):
            failures.append(
                f"overload: parked request {index} resolved with "
                f"{outcomes.get(index)!r} instead of a 503"
            )


def soak_payloads(samples: int):
    """The smoke burst plus extra distinct-seed work, for sustained load."""
    payloads = burst_payloads(samples)
    for seed in (3, 4, 5, 6):
        payloads.append(
            {
                "model": "tea",
                "backend": "vectorized",
                "copy_levels": [1, 2],
                "spf_levels": [1, 2],
                "repeats": 1,
                "seed": seed,
                "max_samples": samples,
            }
        )
    return payloads


def run_soak_wave(server, payloads, failures, wave: str):
    """Fire every payload concurrently with Retry-After back-off.

    Returns the number of back-off naps the wave took (a lower bound on
    client-visible 429s — the server-side count is on ``/metrics``).
    """
    client = ServeClient(port=server.port, timeout=600.0)
    naps = []
    outcomes = {}

    def fire(index, payload):
        try:
            outcomes[index] = client.evaluate_with_retry(
                payload, retries=20, sleep=lambda s: (naps.append(s), time.sleep(s))
            )
        except Exception as error:
            outcomes[index] = error

    threads = [
        threading.Thread(target=fire, args=(index, payload))
        for index, payload in enumerate(payloads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    if any(thread.is_alive() for thread in threads):
        failures.append(f"{wave}: a request thread is still alive (hang)")
    for index in range(len(payloads)):
        if isinstance(outcomes.get(index), Exception):
            failures.append(
                f"{wave}: request {index} failed after retries: "
                f"{outcomes[index]!r}"
            )
    return len(naps)


def run_soak(registry, args, failures):
    """Overload -> sustained waves -> mid-run restart -> journal-warm replay."""
    payloads = soak_payloads(args.samples)
    record = {
        "waves": args.soak_waves,
        "burst": len(payloads),
        "worker_mode": args.worker_mode,
        "target_p95": args.target_p95,
    }
    with tempfile.TemporaryDirectory(prefix="repro-serve-soak-") as workdir:
        journal_path = os.path.join(workdir, "journal.jsonl")
        cache_dir = os.path.join(workdir, "score-cache")

        def make_config():
            return ServeConfig(
                port=0,
                workers=args.workers,
                worker_mode=args.worker_mode,
                queue_depth=4,  # small starting bound: wave 1 must overload
                target_p95=args.target_p95,
                journal_path=journal_path,
                cache_dir=cache_dir,
            )

        # --- phase 1: sustained waves through overload -----------------
        # Each wave fires every payload three times concurrently: enough
        # arrivals to overflow the depth-4 queue even when process-mode
        # dispatchers are claiming full batches off it.
        wave_payloads = payloads * 3
        record["wave_concurrency"] = len(wave_payloads)
        start = time.perf_counter()
        server = EvalServer(registry, make_config()).start()
        try:
            naps = 0
            for wave in range(args.soak_waves):
                naps += run_soak_wave(server, wave_payloads, failures, f"wave {wave}")
            client = ServeClient(port=server.port, timeout=60.0)
            metrics = client.metrics()
            check_metrics_invariants(metrics, failures, "soak")
            requests = metrics["requests"]
            controller = metrics["controller"]
            if requests["rejected"] == 0:
                failures.append(
                    "soak: the burst never overloaded the starting depth-4 "
                    f"queue ({requests})"
                )
            if requests["in_flight"] != 0:
                failures.append("soak: in_flight != 0 after the waves drained")
            p95 = requests["latency_p95_seconds"]
            if p95 is None or p95 > args.target_p95:
                failures.append(
                    f"soak: observed p95 {p95} outside the controller "
                    f"target {args.target_p95}s"
                )
            if controller["ticks"] == 0:
                failures.append("soak: the admission controller never ticked")
            if not (
                controller["min_depth"]
                <= controller["effective_depth"]
                <= controller["max_depth"]
            ):
                failures.append(
                    f"soak: effective depth {controller['effective_depth']} "
                    "escaped the configured bounds"
                )
            record["soak_requests"] = requests
            record["controller"] = controller
            record["client_backoff_naps"] = naps
        finally:
            server.close()
        record["soak_seconds"] = time.perf_counter() - start

        # --- phase 2: restart, warm from the journal, replay the burst -
        journaled = len(RequestJournal(journal_path).replay())
        server = EvalServer(registry, make_config()).start()
        try:
            client = ServeClient(port=server.port, timeout=60.0)
            boot = client.metrics()
            warmed = (boot["journal"] or {}).get("warmed_at_boot")
            if warmed != journaled:
                failures.append(
                    f"restart: warmed {warmed} of {journaled} journaled "
                    "fingerprints"
                )
            passes_before = boot["sessions"]["engine_passes"]
            memo_hits_before = boot["memo"]["hits"]
            replay_client = ServeClient(port=server.port, timeout=600.0)
            responses = {}
            replay_start = time.perf_counter()
            for index, payload in enumerate(payloads):
                try:
                    responses[index] = replay_client.evaluate_with_retry(
                        payload, retries=20
                    )
                except Exception as error:
                    responses[index] = error
            record["replay_seconds"] = time.perf_counter() - replay_start
            verify_bit_identical(responses, registry, payloads, failures, "restart")
            after = client.metrics()
            check_metrics_invariants(after, failures, "restart")
            fresh_passes = after["sessions"]["engine_passes"] - passes_before
            if fresh_passes != 0:
                failures.append(
                    f"restart: repeated burst cost {fresh_passes} fresh "
                    "engine passes (journal warm-up must cover it)"
                )
            if after["memo"]["hits"] <= memo_hits_before:
                failures.append("restart: the result memo never hit")
            record["journal"] = after["journal"]
            record["memo"] = after["memo"]
            record["warmed_at_boot"] = warmed
            record["replay_engine_passes"] = fresh_passes
        finally:
            server.close()
    return record


def check_fleet_invariants(metrics, failures, where: str) -> None:
    """The aggregated conservation laws of the front's /metrics view."""
    fleet_requests = metrics["fleet"]["requests"]
    if fleet_requests["received"] != (
        fleet_requests["admitted"] + fleet_requests["rejected"]
    ):
        failures.append(
            f"{where}: fleet received != admitted + rejected ({fleet_requests})"
        )
    if fleet_requests["admitted"] != (
        fleet_requests["completed"]
        + fleet_requests["failed"]
        + fleet_requests["in_flight"]
    ):
        failures.append(
            f"{where}: fleet admitted != completed + failed + in_flight "
            f"({fleet_requests})"
        )
    front = metrics["front"]
    if front["received"] != front["routed"] + front["shed"] + front["unavailable"]:
        failures.append(
            f"{where}: front received != routed + shed + unavailable ({front})"
        )


def run_fleet_soak(registry, args, failures):
    """Warm wave -> mid-burst replica kill -> rejoin -> journal-warm repeat."""
    payloads = soak_payloads(args.samples)
    record = {
        "fleet": args.fleet,
        "burst": len(payloads),
        "worker_mode": args.worker_mode,
    }
    with tempfile.TemporaryDirectory(prefix="repro-serve-fleet-") as workdir:
        cache_dir = os.path.join(workdir, "score-cache")

        def make_config(index: int, port: int = 0) -> ServeConfig:
            # Per-replica journal (each replica owns its admissions), one
            # shared on-disk score cache (its writes are atomic by design).
            return ServeConfig(
                port=port,
                workers=args.workers,
                worker_mode=args.worker_mode,
                queue_depth=16,
                target_p95=args.target_p95,
                journal_path=os.path.join(workdir, f"journal-{index}.jsonl"),
                cache_dir=cache_dir,
            )

        replicas = [
            EvalServer(registry, make_config(index)).start()
            for index in range(args.fleet)
        ]
        ports = [replica.port for replica in replicas]
        front = FrontServer(
            FrontConfig(
                port=0,
                replicas=tuple(f"127.0.0.1:{port}" for port in ports),
                poll_interval=0.1,
                request_timeout=600.0,
            )
        ).start()
        client = ServeClient(port=front.port, timeout=600.0)
        burst = payloads * 2
        threads = []
        try:
            # --- warm wave: every payload journals at its home replica --
            start = time.perf_counter()
            responses = {}
            for index, payload in enumerate(payloads):
                try:
                    responses[index] = client.evaluate_with_retry(
                        payload, retries=20
                    )
                except Exception as error:
                    responses[index] = error
            record["warm_seconds"] = time.perf_counter() - start
            verify_bit_identical(
                responses, registry, payloads, failures, "fleet warm"
            )

            primary = client.fleet()["assignments"]["tea"]
            victim = ports.index(int(primary.rsplit(":", 1)[1]))
            record["primary"] = primary

            # --- kill the home replica in the middle of a live burst ----
            outcomes = {}

            def fire(index, payload):
                try:
                    outcomes[index] = ServeClient(
                        port=front.port, timeout=600.0
                    ).evaluate_with_retry(payload, retries=20)
                except Exception as error:
                    outcomes[index] = error

            threads = [
                threading.Thread(target=fire, args=(index, payload))
                for index, payload in enumerate(burst)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            time.sleep(0.05)
            replicas[victim].close()  # mid-burst kill
            for thread in threads:
                thread.join(timeout=600)
            record["kill_burst_seconds"] = time.perf_counter() - start
            if any(thread.is_alive() for thread in threads):
                failures.append("fleet kill: a request thread is still alive")
            # Zero client-visible 5xx: every burst request must have been
            # absorbed by failover (429-with-retry is allowed; errors not).
            for index in range(len(burst)):
                if isinstance(outcomes.get(index), Exception):
                    failures.append(
                        f"fleet kill: request {index} surfaced "
                        f"{outcomes[index]!r} to the client"
                    )
            verify_bit_identical(outcomes, registry, burst, failures, "fleet kill")
            # The burst may drain from the memo before the kill lands; the
            # poller still has to notice the dead replica and eject it
            # within a few poll intervals.
            for _ in range(100):
                if client.health()["healthy"] == args.fleet - 1:
                    break
                time.sleep(0.1)
            health = client.health()
            if health["healthy"] != args.fleet - 1:
                failures.append(
                    f"fleet kill: front reports {health['healthy']} healthy "
                    f"replicas, expected {args.fleet - 1}"
                )

            # --- restart the victim on its old port: rejoin + warm ------
            start = time.perf_counter()
            replicas[victim] = EvalServer(
                registry, make_config(victim, port=ports[victim])
            ).start()
            for _ in range(100):
                if client.health()["healthy"] == args.fleet:
                    break
                time.sleep(0.1)
            record["rejoin_seconds"] = time.perf_counter() - start
            if client.health()["healthy"] != args.fleet:
                failures.append("fleet rejoin: the restarted replica never rejoined")
            if client.fleet()["assignments"].get("tea") != primary:
                failures.append(
                    "fleet rejoin: rendezvous hashing did not restore the "
                    "original assignment"
                )
            victim_client = ServeClient(port=ports[victim], timeout=60.0)
            boot = victim_client.metrics()
            warmed = (boot["journal"] or {}).get("warmed_at_boot", 0)
            record["warmed_at_boot"] = warmed
            if not warmed:
                failures.append(
                    "fleet rejoin: the restarted home replica warmed nothing "
                    "from its journal"
                )

            # --- repeated burst: zero fresh engine passes fleet-wide ----
            def fleet_passes() -> int:
                total = 0
                for replica in replicas:
                    metrics = ServeClient(
                        port=replica.port, timeout=60.0
                    ).metrics()
                    total += metrics["sessions"]["engine_passes"]
                return total

            passes_before = fleet_passes()
            start = time.perf_counter()
            repeat_responses = {}
            for index, payload in enumerate(payloads):
                try:
                    repeat_responses[index] = client.evaluate_with_retry(
                        payload, retries=20
                    )
                except Exception as error:
                    repeat_responses[index] = error
            record["repeat_seconds"] = time.perf_counter() - start
            verify_bit_identical(
                repeat_responses, registry, payloads, failures, "fleet repeat"
            )
            fresh = fleet_passes() - passes_before
            record["repeat_engine_passes"] = fresh
            if fresh != 0:
                failures.append(
                    f"fleet repeat: repeated burst cost {fresh} fresh engine "
                    "passes (journal warm-up must cover the takeover)"
                )

            # --- aggregated metrics: conservation + fleet bookkeeping ---
            metrics = client.metrics()
            check_fleet_invariants(metrics, failures, "fleet")
            replica_received = 0
            for replica in replicas:
                replica_received += ServeClient(
                    port=replica.port, timeout=60.0
                ).metrics()["requests"]["received"]
            if metrics["fleet"]["requests"]["received"] != replica_received:
                failures.append(
                    "fleet: aggregated received "
                    f"{metrics['fleet']['requests']['received']} != sum of "
                    f"replica counters {replica_received}"
                )
            if metrics["front"]["unavailable"] != 0:
                failures.append(
                    f"fleet: {metrics['front']['unavailable']} requests "
                    "answered 503 at the front"
                )
            record["front"] = metrics["front"]
            record["fleet_requests"] = metrics["fleet"]["requests"]
            record["ejections"] = sum(
                entry["ejections"] for entry in client.fleet()["replicas"]
            )
        finally:
            front.close()
            for replica in replicas:
                replica.close()
            for thread in threads:
                thread.join(timeout=30)
    return record


def main() -> None:
    args = parse_args()
    context = ExperimentContext(
        train_size=args.train_size,
        test_size=max(args.samples, 30),
        epochs=args.epochs,
        eval_samples=args.samples,
        repeats=1,
        seed=0,
    )
    registry = ModelRegistry.from_context(context, methods=("tea",))
    failures = []

    if args.soak and args.fleet:
        fleet = run_fleet_soak(registry, args, failures)
        record = {
            "benchmark": "serve-fleet-soak",
            "config": {
                "workers": args.workers,
                "samples": args.samples,
                "train_size": args.train_size,
            },
            **fleet,
            "ok": not failures,
            "failures": failures,
            "python": platform.python_version(),
            "numpy": np.__version__,
        }
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=2)
                handle.write("\n")
        print(json.dumps(record, indent=2))
        if failures:
            raise SystemExit("; ".join(failures))
        return

    if args.soak:
        soak = run_soak(registry, args, failures)
        record = {
            "benchmark": "serve-soak",
            "config": {
                "workers": args.workers,
                "samples": args.samples,
                "train_size": args.train_size,
            },
            **soak,
            "ok": not failures,
            "failures": failures,
            "python": platform.python_version(),
            "numpy": np.__version__,
        }
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(record, handle, indent=2)
                handle.write("\n")
        print(json.dumps(record, indent=2))
        if failures:
            raise SystemExit("; ".join(failures))
        return

    payloads = burst_payloads(args.samples)

    config = ServeConfig(
        port=0, workers=args.workers, queue_depth=max(16, 2 * len(payloads))
    )
    with EvalServer(registry, config) as server:
        burst_seconds = run_burst(server, registry, payloads, failures)
        client = ServeClient(port=server.port, timeout=60.0)
        metrics = client.metrics()
        check_metrics_invariants(metrics, failures, "burst")
        if metrics["requests"]["completed"] != len(payloads):
            failures.append(
                f"burst: completed={metrics['requests']['completed']}, "
                f"expected {len(payloads)}"
            )
        if metrics["requests"]["in_flight"] != 0:
            failures.append("burst: in_flight != 0 after the burst drained")
        coalesced = metrics["sessions"]["coalesced_requests"]
    run_overload(registry, failures)

    record = {
        "benchmark": "serve-smoke",
        "config": {
            "burst": len(payloads),
            "workers": args.workers,
            "samples": args.samples,
            "train_size": args.train_size,
        },
        "burst_seconds": burst_seconds,
        "coalesced_requests": coalesced,
        "requests": metrics["requests"],
        "cache": metrics["cache"],
        "ok": not failures,
        "failures": failures,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
    print(json.dumps(record, indent=2))
    if failures:
        raise SystemExit("; ".join(failures))


if __name__ == "__main__":
    main()
