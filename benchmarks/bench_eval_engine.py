"""Benchmark: vectorized evaluation engine vs the per-(copy, frame) loop.

Times the Figure 7-9 hot path — class scores of N deployed copies over a
(spf x batch) spike volume — on the vectorized engine
(:class:`repro.eval.engine.VectorizedEvaluator`) against the original
nested-loop reference (:func:`repro.eval.engine.evaluate_scores_reference`),
verifies the two score tensors are bit-identical (atol=0), and records the
result to a JSON file for CI tracking.

Usage::

    PYTHONPATH=src python benchmarks/bench_eval_engine.py --quick
    PYTHONPATH=src python benchmarks/bench_eval_engine.py \
        --copies 16 --spf 4 --samples 500 --output BENCH_eval.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time

import numpy as np

from repro.eval.engine import VectorizedEvaluator, evaluate_scores_reference
from repro.experiments.runner import ExperimentContext
from repro.mapping.corelet import build_corelets
from repro.mapping.duplication import deploy_with_copies


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--copies", type=int, default=16, help="network copies")
    parser.add_argument("--spf", type=int, default=4, help="spikes per frame")
    parser.add_argument("--samples", type=int, default=500, help="evaluated samples")
    parser.add_argument(
        "--train-size", type=int, default=600, help="training samples for the model"
    )
    parser.add_argument("--epochs", type=int, default=3, help="training epochs")
    parser.add_argument(
        "--loop-repeats", type=int, default=1, help="timing repeats of the loop path"
    )
    parser.add_argument(
        "--engine-repeats",
        type=int,
        default=3,
        help="timing repeats of the engine path (best is reported)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke settings: fewer copies/samples so CI finishes in seconds",
    )
    parser.add_argument(
        "--output", default="BENCH_eval.json", help="where to write the JSON record"
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    if args.quick:
        args.copies = min(args.copies, 8)
        args.samples = min(args.samples, 150)
        args.train_size = min(args.train_size, 300)

    context = ExperimentContext(
        train_size=args.train_size,
        test_size=max(args.samples, 50),
        epochs=args.epochs,
        eval_samples=args.samples,
        repeats=1,
        seed=0,
    )
    model = context.result("tea").model
    dataset = context.evaluation_dataset()
    network = build_corelets(model)
    deployment = deploy_with_copies(
        model, copies=args.copies, rng=0, corelet_network=network
    )

    loop_times = []
    for _ in range(args.loop_repeats):
        start = time.perf_counter()
        reference = evaluate_scores_reference(
            deployment.copies, dataset.features, args.spf, rng=0
        )
        loop_times.append(time.perf_counter() - start)

    evaluator = VectorizedEvaluator(deployment.copies)
    engine_times = []
    for _ in range(args.engine_repeats):
        start = time.perf_counter()
        fast = evaluator.evaluate_scores(dataset.features, args.spf, rng=0)
        engine_times.append(time.perf_counter() - start)

    identical = bool(np.array_equal(fast, reference))
    loop_seconds = min(loop_times)
    engine_seconds = min(engine_times)
    record = {
        "benchmark": "eval-engine",
        "config": {
            "copies": args.copies,
            "spikes_per_frame": args.spf,
            "samples": int(dataset.features.shape[0]),
            "features": int(dataset.features.shape[1]),
            "cores_per_copy": network.core_count,
            "quick": bool(args.quick),
        },
        "loop_seconds": loop_seconds,
        "engine_seconds": engine_seconds,
        "speedup": loop_seconds / engine_seconds if engine_seconds else float("inf"),
        "scores_bit_identical": identical,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    if not identical:
        raise SystemExit("engine scores diverged from the loop reference")
    if record["speedup"] < 1.0:
        raise SystemExit("engine slower than the loop reference")


if __name__ == "__main__":
    main()
