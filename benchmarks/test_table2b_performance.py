"""Benchmark: Table 2(b) — performance (spikes-per-frame) efficiency.

Paper: with a single network copy, the biased model at 2 spf already exceeds
the accuracy the Tea model only reaches at 13 spf, a 6.5x speedup; similar
multi-x speedups appear across the accuracy range.
"""

from conftest import run_once

from repro.experiments.table2 import run_table2b


def test_table2b_performance_efficiency(benchmark, context, tea_result, biased_result):
    report = run_once(
        benchmark,
        run_table2b,
        context,
        spf_levels=(1, 2, 3, 4, 6, 8, 10, 13),
        biased_spf_levels=(1, 2, 3, 4, 5),
        copies=1,
    )
    print("\n" + report["table"])
    print(
        f"Table 2(b) | max speedup {report['max_speedup']:.2f}x (paper 6.5x)"
    )
    matched = [row for row in report["rows"] if row.ours is not None]
    assert matched, "biased method never reached a Tea accuracy level"
    # The biased model reaches matched accuracy with meaningfully fewer
    # spikes per frame (i.e. faster inference) on at least one row.
    assert report["max_speedup"] >= 2.0
    for row in matched:
        assert row.ours.accuracy >= row.baseline.accuracy
        assert row.speedup >= 1.0 or row.baseline.cost <= row.ours.cost
