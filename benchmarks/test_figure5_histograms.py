"""Benchmark: Figure 5 — connectivity-probability histograms under penalties.

Paper: without a penalty a large part of the probability mass already sits
near the poles but plenty remains in the middle; L1 pushes mass toward zero
while leaving the worst region (around p = 0.5) populated and the p = 1 pole
depleted; the biasing penalty concentrates almost all probabilities at the
two poles.  Float accuracies stay close (95.27% / 95.36% / 95.03%).
"""

from conftest import run_once

from repro.experiments.figure5 import run_figure5


def test_figure5_probability_histograms(benchmark, context, tea_result, biased_result, l1_result):
    report = run_once(benchmark, run_figure5, context, bins=20)
    tea = report["tea"]
    l1 = report["l1"]
    biased = report["biased"]
    print(
        "\nFigure 5 | pole fraction: tea "
        f"{tea['pole_fraction']:.3f}, l1 {l1['pole_fraction']:.3f}, biased "
        f"{biased['pole_fraction']:.3f} | centroid fraction: tea "
        f"{tea['centroid_fraction']:.3f}, l1 {l1['centroid_fraction']:.3f}, biased "
        f"{biased['centroid_fraction']:.3f} | float acc: "
        f"{tea['float_accuracy']:.3f} / {l1['float_accuracy']:.3f} / {biased['float_accuracy']:.3f}"
    )
    # The biasing penalty drives nearly all probabilities to the poles.
    assert biased["pole_fraction"] > 0.85
    assert biased["pole_fraction"] > tea["pole_fraction"] + 0.3
    assert biased["pole_fraction"] > l1["pole_fraction"]
    # It empties the worst-variance region more than either baseline.
    assert biased["centroid_fraction"] <= tea["centroid_fraction"] + 1e-9
    # All three training runs keep comparable float accuracy (within several
    # points — the paper's three runs are within 0.3 points of each other; the
    # scaled-down synthetic setting is noisier).
    accuracies = [tea["float_accuracy"], l1["float_accuracy"], biased["float_accuracy"]]
    assert max(accuracies) - min(accuracies) < 0.1
    # Histogram mass equals the number of trained connections for each method.
    for entry in (tea, l1, biased):
        assert sum(entry["histogram_counts"]) > 0
