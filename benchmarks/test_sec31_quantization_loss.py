"""Benchmark: Section 3.1 quantization-loss numbers.

Paper: the float model reaches 95.27%, drops to 90.04% when deployed with
one copy at one spf, and recovers to 94.63% with 16 copies (64 cores).
The reproduction asserts the same ordering and that the recovery closes most
of the gap toward the float ceiling.
"""

from conftest import run_once

from repro.eval.accuracy import evaluate_deployed_accuracy
from repro.eval.occupation import core_occupation


def test_sec31_quantization_loss_and_recovery(benchmark, context, tea_result):
    dataset = context.evaluation_dataset()
    model = tea_result.model

    def measure():
        single = evaluate_deployed_accuracy(
            model, dataset, copies=1, spikes_per_frame=1, repeats=3, rng=0
        )
        sixteen = evaluate_deployed_accuracy(
            model, dataset, copies=16, spikes_per_frame=1, repeats=2, rng=0
        )
        return single, sixteen

    single, sixteen = run_once(benchmark, measure)
    float_accuracy = tea_result.float_accuracy
    print(
        f"\nSec 3.1 | float {float_accuracy:.4f} (paper 0.9527) | "
        f"1 copy {single.mean_accuracy:.4f} (paper 0.9004) | "
        f"16 copies {sixteen.mean_accuracy:.4f} (paper 0.9463)"
    )
    # Deployment at one copy loses accuracy relative to the float model.
    assert single.mean_accuracy < float_accuracy - 0.03
    # Sixteen copies recover a large part of the loss and use 64 cores.
    assert sixteen.mean_accuracy > single.mean_accuracy + 0.02
    assert sixteen.mean_accuracy > float_accuracy - 0.05
    assert core_occupation(model, 16) == 64
    assert core_occupation(model, 1) == 4
