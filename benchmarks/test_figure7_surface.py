"""Benchmark: Figure 7 — accuracy surfaces over (copies, spf).

Paper: both surfaces rise with spatial and temporal duplication and saturate
toward the float-model ceiling (~95%); the probability-biased surface covers
the Tea surface, especially at small duplication.
"""

import numpy as np
from conftest import run_once

from repro.experiments.figure7 import run_figure7

COPY_LEVELS = (1, 2, 4, 8, 16)
SPF_LEVELS = (1, 2, 3, 4)


def test_figure7_accuracy_surfaces(benchmark, context, tea_result, biased_result):
    report = run_once(
        benchmark, run_figure7, context, copy_levels=COPY_LEVELS, spf_levels=SPF_LEVELS
    )
    tea = np.asarray(report["tea"]["surface"])
    biased = np.asarray(report["biased"]["surface"])
    print("\nFigure 7 | Tea surface (rows = copies 1..16, cols = spf 1..4):")
    for copies, row in zip(COPY_LEVELS, tea):
        print(f"  copies={copies:2d}: " + " ".join(f"{v:.3f}" for v in row))
    print("Figure 7 | Biased surface:")
    for copies, row in zip(COPY_LEVELS, biased):
        print(f"  copies={copies:2d}: " + " ".join(f"{v:.3f}" for v in row))

    # Duplication helps: the most-duplicated corner beats the least-duplicated
    # corner for both methods.
    assert tea[-1, -1] > tea[0, 0] + 0.02
    assert biased[-1, -1] >= biased[0, 0]
    # Surfaces saturate toward (and do not meaningfully exceed) the float ceiling.
    assert tea[-1, -1] <= report["tea"]["float_accuracy"] + 0.04
    assert biased[-1, -1] <= report["biased"]["float_accuracy"] + 0.04
    # The biased surface covers the Tea surface in the low-duplication region
    # (the regime the paper emphasizes).
    assert biased[0, 0] > tea[0, 0]
    assert biased[0, 1] > tea[0, 1]
    assert biased[1, 0] >= tea[1, 0] - 0.01
    # Accuracy is monotone (within noise) along the copy axis at 1 spf for Tea.
    assert tea[-1, 0] > tea[0, 0]
