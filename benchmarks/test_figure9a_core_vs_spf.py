"""Benchmark: Figure 9(a) — core saving as a function of spikes per frame.

Paper: the average core reduction achieved by the biased method stays large
(roughly 40-60%) across spf levels 1-4 and roughly grows with spf.
"""

from conftest import run_once

from repro.experiments.figure9 import run_figure9a


def test_figure9a_core_saving_vs_spf(benchmark, context, tea_result, biased_result):
    report = run_once(
        benchmark,
        run_figure9a,
        context,
        spf_levels=(1, 2, 4),
        copy_levels=(1, 2, 3, 4, 5, 7, 9, 16),
        biased_copy_levels=(1, 2, 3, 4),
    )
    savings = report["savings"]
    print("\nFigure 9(a) | average core saving per spf:")
    for spf, entry in sorted(savings.items()):
        print(
            f"  spf={spf}: avg {100 * entry['average_saved_fraction']:.1f}%, "
            f"max {100 * entry['max_saved_fraction']:.1f}%"
        )
    # The biased method never costs cores at any evaluated spf level, and at
    # least one level shows a clear average saving.
    for entry in savings.values():
        assert entry["average_saved_fraction"] >= -0.01
        assert entry["max_saved_fraction"] >= entry["average_saved_fraction"]
    assert max(entry["average_saved_fraction"] for entry in savings.values()) > 0.1
    # At least one spf level shows the substantial (>30%) savings the paper
    # reports.
    assert max(entry["max_saved_fraction"] for entry in savings.values()) > 0.3
