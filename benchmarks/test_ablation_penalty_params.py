"""Ablation: the biasing-penalty parameters (a, b) of Eq. (17).

DESIGN.md calls out the choice a = b = 0.5 (poles at the deterministic
probabilities 0 and 1) for ablation.  This benchmark compares the default
against a mis-specified centroid (poles at 0.25 / 0.75), verifying that only
the paper's choice drives probabilities to the deterministic states and
therefore minimizes the mean synaptic variance.
"""

import numpy as np
from conftest import run_once

from repro.core.biased import ProbabilityBiasedLearning
from repro.core.penalties import pole_fraction
from repro.core.variance import mean_synaptic_variance


def train_with_penalty_shape(context, centroid, half_width):
    learner = ProbabilityBiasedLearning(
        epochs=context.epochs,
        seed=context.seed,
        penalty_weight=context.penalty_weight,
        centroid=centroid,
        half_width=half_width,
    )
    return learner.train(context.architecture(), context.splits())


def test_ablation_penalty_centroid_and_width(benchmark, context):
    def measure():
        default = context.result("biased")
        narrow = train_with_penalty_shape(context, centroid=0.5, half_width=0.25)
        return default, narrow

    default, narrow = run_once(benchmark, measure)

    def stats(result):
        probabilities = result.model.all_probabilities()
        return (
            pole_fraction(probabilities),
            mean_synaptic_variance(probabilities, np.ones_like(probabilities)),
        )

    default_pole, default_variance = stats(default)
    narrow_pole, narrow_variance = stats(narrow)
    print(
        f"\nAblation (a, b) | a=b=0.5: pole {default_pole:.3f}, variance {default_variance:.4f} | "
        f"a=0.5, b=0.25: pole {narrow_pole:.3f}, variance {narrow_variance:.4f}"
    )
    # The paper's a = b = 0.5 drives probabilities to the deterministic poles
    # and yields lower Bernoulli variance than poles at 0.25 / 0.75.
    assert default_pole > narrow_pole
    assert default_variance < narrow_variance
