"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
expensive part — training the Tea / L1 / probability-biased models of test
bench 1 on the synthetic MNIST stand-in — is done once per session here and
shared; the individual benchmark files then time the evaluation stage of
their experiment and assert the paper's *shape* claims (who wins, roughly by
how much, where the effect is largest).  Absolute accuracies differ from the
paper because the substrate is a simulator and the datasets are synthetic
stand-ins; EXPERIMENTS.md records the measured values next to the paper's.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentContext


def pytest_configure(config):
    # Benchmarks live outside the default testpaths; ensure they are
    # collected when invoked explicitly (pytest benchmarks/).
    config.addinivalue_line("markers", "paper: regenerates a paper table/figure")


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """Calibrated test-bench-1 context shared by all benchmarks."""
    return ExperimentContext(
        train_size=2500,
        test_size=500,
        epochs=20,
        eval_samples=500,
        repeats=3,
        seed=0,
    )


@pytest.fixture(scope="session")
def tea_result(context):
    return context.result("tea")


@pytest.fixture(scope="session")
def biased_result(context):
    return context.result("biased")


@pytest.fixture(scope="session")
def l1_result(context):
    return context.result("l1")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
