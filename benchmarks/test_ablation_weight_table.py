"""Ablation: synaptic-value magnitude (the axon-type weight-table entries).

The architecture trains weights constrained to [-c, +c] and deploys with
Bernoulli probability |w| / c.  A larger synaptic value c makes each
connection's quantization coarser (the same trained weight maps to a smaller
probability with a bigger jump when the synapse happens to be ON), so the
per-connection variance  c^2 p (1 - p) = c |w| - w^2  grows with c.  This
benchmark verifies that analytic relationship on the trained Tea model and
its consequence for the deployment deviation.
"""

from conftest import run_once

from repro.core.probability import weights_to_probabilities
from repro.core.variance import synaptic_variance


def test_ablation_synaptic_value_magnitude(benchmark, context, tea_result):
    weights = tea_result.model.all_weights()

    def measure():
        variances = {}
        for value in (1.0, 2.0, 4.0):
            mapping = weights_to_probabilities(weights, synaptic_value=value)
            variances[value] = float(
                synaptic_variance(mapping.probabilities, mapping.synaptic_values).mean()
            )
        return variances

    variances = run_once(benchmark, measure)
    print(
        "\nAblation weight table | mean per-synapse variance: "
        + ", ".join(f"c={value}: {variances[value]:.4f}" for value in sorted(variances))
    )
    # Coarser synaptic values (larger c) strictly increase the sampling
    # variance of the same trained weights.
    assert variances[1.0] < variances[2.0] < variances[4.0]
    # With c = 1 no weight needs clipping (training already constrains to [-1, 1]).
    assert weights_to_probabilities(weights, synaptic_value=1.0).clipped_fraction == 0.0
