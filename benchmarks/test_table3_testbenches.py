"""Benchmark: Table 3 — test-bench structure and float accuracies.

The structural columns (dataset, stride, hidden layers, cores per layer) must
match the paper exactly; the float ("Caffe") accuracy is re-measured for the
two single-hidden-layer benches on their synthetic stand-ins.
"""

from conftest import run_once

from repro.experiments.table3 import run_table3


def test_table3_testbench_structure_and_accuracy(benchmark):
    report = run_once(
        benchmark,
        run_table3,
        testbenches=(1, 2, 3, 4, 5),
        measure=(1, 4),
        context_overrides={
            "train_size": 1200,
            "test_size": 300,
            "epochs": 12,
        },
    )
    print("\n" + report["table"])
    rows = {row["testbench"]: row for row in report["rows"]}
    # Structural columns reproduce Table 3 exactly.
    assert rows[1]["cores_per_layer"] == "4" and rows[1]["block_stride"] == 12
    assert rows[2]["cores_per_layer"] == "16" and rows[2]["block_stride"] == 4
    assert rows[3]["cores_per_layer"] == "49~9~4" and rows[3]["hidden_layers"] == 3
    assert rows[4]["cores_per_layer"] == "4" and rows[4]["dataset"] == "RS130"
    assert rows[5]["cores_per_layer"] == "16~9" and rows[5]["hidden_layers"] == 2
    # Measured float accuracies: the MNIST bench trains to a strong accuracy,
    # the RS130 bench to a modest one (paper: 95.27% vs 69.09%), and the
    # MNIST bench is the easier of the two.
    mnist_accuracy = rows[1]["measured_float_accuracy"]
    rs130_accuracy = rows[4]["measured_float_accuracy"]
    assert mnist_accuracy is not None and rs130_accuracy is not None
    assert mnist_accuracy > 0.8
    assert rs130_accuracy > 1.0 / 3.0 + 0.05  # clearly above chance
    assert mnist_accuracy > rs130_accuracy
