"""Benchmark: Figure 8 — accuracy boost of the biased method over Tea.

Paper: the boost is largest (about +2.5 points) at the lowest duplication
level (one network copy, one spike per frame) and shrinks as duplication
increases.
"""

import numpy as np
from conftest import run_once

from repro.experiments.figure8 import run_figure8

COPY_LEVELS = (1, 2, 4, 8, 16)
SPF_LEVELS = (1, 2, 3, 4)


def test_figure8_accuracy_boost(benchmark, context, tea_result, biased_result):
    report = run_once(
        benchmark, run_figure8, context, copy_levels=COPY_LEVELS, spf_levels=SPF_LEVELS
    )
    boost = np.asarray(report["boost"])
    print("\nFigure 8 | boost (biased - tea), rows = copies, cols = spf:")
    for copies, row in zip(COPY_LEVELS, boost):
        print(f"  copies={copies:2d}: " + " ".join(f"{v:+.3f}" for v in row))
    print(
        f"Figure 8 | max boost {report['max_boost']:+.3f} at {report['max_boost_at']} "
        f"(paper: +0.025 at 1 copy / 1 spf)"
    )
    # The boost at minimum duplication is clearly positive.
    assert report["boost_at_minimum_duplication"] > 0.01
    # The largest boost occurs in the low-duplication region of the grid.
    assert report["max_boost_at"]["copies"] <= 2
    # The boost shrinks as spatial duplication washes out the sampling
    # variance: the 16-copy row is smaller than the 1-copy row on average.
    assert boost[0].mean() > boost[-1].mean()
