"""Benchmark: Figure 9(b) — core saving across test benches.

Paper: the benefit of the biased method varies with the application and the
network structure, but it substantially reduces the needed cores on every
test bench.  The default here evaluates the two single-hidden-layer benches
(1: MNIST, 4: RS130) to keep the harness laptop-scale; the driver accepts
``testbenches=(1, 2, 3, 4, 5)`` for the full figure.
"""

from conftest import run_once

from repro.experiments.figure9 import run_figure9b


def test_figure9b_core_saving_across_testbenches(benchmark):
    report = run_once(
        benchmark,
        run_figure9b,
        testbenches=(1, 4),
        copy_levels=(1, 2, 3, 4, 5, 7, 9, 16),
        biased_copy_levels=(1, 2, 3, 4),
        context_overrides={
            "train_size": 1800,
            "test_size": 400,
            "epochs": 18,
            "eval_samples": 350,
            "repeats": 3,
        },
    )
    print("\nFigure 9(b) | average core saving per test bench:")
    for bench, entry in sorted(report["savings"].items()):
        print(
            f"  bench {bench}: avg {100 * entry['average_saved_fraction']:.1f}%, "
            f"max {100 * entry['max_saved_fraction']:.1f}%, "
            f"float acc tea {entry['tea_float_accuracy']:.3f} / "
            f"biased {entry['biased_float_accuracy']:.3f}"
        )
    savings = report["savings"]
    # The MNIST bench shows a substantial core saving; the RS130 bench never
    # regresses (its margins are small — the paper's own Figure 9(b) shows the
    # benefit varying widely across benches — so the reproduction only asserts
    # non-negative savings there).
    assert savings[1]["max_saved_fraction"] > 0.1
    assert savings[4]["max_saved_fraction"] >= 0.0
    assert savings[4]["average_saved_fraction"] >= -0.05
    # Float accuracies of the two methods stay comparable on each bench.
    for entry in savings.values():
        assert abs(entry["tea_float_accuracy"] - entry["biased_float_accuracy"]) < 0.12
