"""Benchmark: Section 3.3 L1-sparsity experiment on a LeNet-300-100 style MLP.

Paper: with an L1 penalty, 88.47% / 83.23% / 29.6% of the weights of the
three layers of a 784-300-100-10 MLP can be zeroed out with only a small
accuracy drop (97.65% -> 96.87%).  The reproduction trains a scaled-down MLP
of the same shape family on the synthetic digits and asserts the same
qualitative outcome: large per-layer sparsity, earlier layers sparser, small
accuracy cost.
"""

from conftest import run_once

from repro.core.penalties import L1Penalty, zero_fraction
from repro.datasets.synthetic_mnist import SyntheticMnistConfig, generate_synthetic_mnist
from repro.nn.activations import Sigmoid
from repro.nn.layers import Dense
from repro.nn.network import Sequential
from repro.nn.optim import Adam
from repro.nn.trainer import Trainer


def build_mlp(rng_seed=0):
    """A 784-120-40-10 MLP (scaled-down LeNet-300-100)."""
    return Sequential(
        [
            Dense(784, 120, activation=Sigmoid(), rng=rng_seed),
            Dense(120, 40, activation=Sigmoid(), rng=rng_seed + 1),
            Dense(40, 10, rng=rng_seed + 2),
        ]
    )


def train_mlp(splits, penalty_coefficient):
    network = build_mlp()
    trainer = Trainer(
        network,
        optimizer=Adam(learning_rate=0.005),
        regularizer=L1Penalty(),
        penalty_coefficient=penalty_coefficient,
    )
    trainer.fit(
        splits.train.features,
        splits.train.labels,
        epochs=12,
        batch_size=32,
        rng=0,
    )
    predictions = network.predict(splits.test.features)
    accuracy = float((predictions == splits.test.labels).mean())
    sparsities = [
        zero_fraction(layer.weights, tolerance=0.01)
        for layer in network.layers
        if isinstance(layer, Dense)
    ]
    return accuracy, sparsities


def test_sec33_l1_zeroes_most_weights(benchmark):
    splits = generate_synthetic_mnist(
        SyntheticMnistConfig(train_size=1200, test_size=300, seed=0)
    )

    def measure():
        baseline_accuracy, baseline_sparsity = train_mlp(splits, penalty_coefficient=0.0)
        l1_accuracy, l1_sparsity = train_mlp(splits, penalty_coefficient=3e-4)
        return baseline_accuracy, baseline_sparsity, l1_accuracy, l1_sparsity

    baseline_accuracy, baseline_sparsity, l1_accuracy, l1_sparsity = run_once(
        benchmark, measure
    )
    print(
        f"\nSec 3.3 | baseline acc {baseline_accuracy:.4f} sparsity "
        f"{[round(s, 3) for s in baseline_sparsity]} | L1 acc {l1_accuracy:.4f} "
        f"sparsity {[round(s, 3) for s in l1_sparsity]} "
        "(paper: 0.8847/0.8323/0.296 zeroed, acc 0.9765 -> 0.9687)"
    )
    # L1 zeroes out far more weights than unpenalized training in the hidden
    # layers.  (The output layer stays dense in the paper too: only 29.6% of
    # its weights are zeroed, and on the scaled-down MLP the output layer is
    # tiny, so it is excluded from the per-layer comparison.)
    for l1_s, base_s in zip(l1_sparsity[:2], baseline_sparsity[:2]):
        assert l1_s > base_s
    # The first hidden layer is the sparsest, the output layer the densest
    # (matching the paper's 88% / 83% / 30% ordering).
    assert l1_sparsity[0] > l1_sparsity[2]
    assert l1_sparsity[0] > 0.5
    # The accuracy cost of sparsification is small relative to the amount of
    # pruning (the paper loses 0.8 points; the scaled-down MLP on synthetic
    # data loses a few points more but stays close to the baseline).
    assert l1_accuracy > baseline_accuracy - 0.08
