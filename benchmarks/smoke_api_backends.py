"""CI smoke: one small EvalRequest through a registered repro.api backend.

Runs a tiny trained model through the requested backend via
:class:`repro.api.Session` and asserts that backend's cross-backend
equivalence invariant:

* ``vectorized`` — score tensors bit-identical to the ``reference`` loop;
* ``chip`` — integer readout class counts bit-identical to ``vectorized``,
  and the default multi-copy chip image bit-identical (counts and per-core
  spike counters, deterministic and stochastic-synapse mode) to the
  one-chip-per-copy loop (``ChipBackend(multicopy=False)``);
* ``board`` — counts, spike counters, and accuracy bit-identical to the
  ``chip`` backend on the same request (deterministic and
  stochastic-synapse mode), and still identical on chips small enough to
  split every copy across the mesh;
* ``reference`` — deterministic: two evaluations of the same request are
  bit-identical, and accuracy lies in [0, 1].

Exits non-zero when an invariant fails, which is what makes the CI
backend-matrix job a regression gate rather than a timing report.

Usage::

    PYTHONPATH=src python benchmarks/smoke_api_backends.py --backend chip
"""

from __future__ import annotations

import argparse
import json
import platform
import time

import numpy as np

from dataclasses import replace

from repro.api import BoardBackend, ChipBackend, EvalRequest, Session, backend_names
from repro.experiments.runner import ExperimentContext
from repro.truenorth.config import ChipConfig


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        required=True,
        choices=sorted(backend_names()),
        help="backend to smoke-test",
    )
    parser.add_argument("--copies", type=int, default=2, help="network copies")
    parser.add_argument("--spf", type=int, default=2, help="spikes per frame")
    parser.add_argument("--samples", type=int, default=40, help="evaluated samples")
    parser.add_argument(
        "--train-size", type=int, default=200, help="training samples for the model"
    )
    parser.add_argument("--epochs", type=int, default=2, help="training epochs")
    parser.add_argument(
        "--output", default=None, help="optional path for the JSON record"
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    context = ExperimentContext(
        train_size=args.train_size,
        test_size=max(args.samples, 30),
        epochs=args.epochs,
        eval_samples=args.samples,
        repeats=1,
        seed=0,
    )
    request = EvalRequest(
        model=context.result("tea").model,
        dataset=context.evaluation_dataset(),
        copy_levels=(1, args.copies),
        spf_levels=(args.spf,),
        repeats=2,
        seed=0,
    )
    session = Session()
    start = time.perf_counter()
    result = session.evaluate(request, backend=args.backend)
    seconds = time.perf_counter() - start

    failures = []
    if args.backend == "vectorized":
        reference = session.evaluate(request, backend="reference")
        if not np.array_equal(result.scores, reference.scores):
            failures.append("vectorized scores diverged from the reference loop")
        invariant = "scores bit-identical to reference"
    elif args.backend == "chip":
        vectorized = session.evaluate(request, backend="vectorized")
        if not np.array_equal(result.class_counts(), vectorized.class_counts()):
            failures.append("chip class counts diverged from the vectorized engine")
        # Multi-copy image vs one-chip-per-copy loop, spike counters
        # included, deterministic and stochastic-synapse mode.
        counters = replace(request, collect_spike_counters=True)
        for variant in (counters, replace(counters, stochastic_synapses=True)):
            multi = session.evaluate(variant, backend="chip")
            percopy = ChipBackend(multicopy=False).evaluate(variant)
            label = "stochastic" if variant.stochastic_synapses else "deterministic"
            if not np.array_equal(multi.class_counts(), percopy.class_counts()):
                failures.append(
                    f"multi-copy chip class counts diverged from the "
                    f"per-copy loop ({label})"
                )
            if not np.array_equal(multi.spike_counters, percopy.spike_counters):
                failures.append(
                    f"multi-copy chip spike counters diverged from the "
                    f"per-copy loop ({label})"
                )
        # Grid path: a multi-spf request (one folded pass per level) must
        # match the stack of single-level requests cell for cell.
        grid_request = replace(request, spf_levels=tuple(sorted({1, args.spf})))
        grid = session.evaluate(grid_request, backend="chip")
        for column, spf in enumerate(grid_request.spf_levels):
            single = session.evaluate(
                replace(request, spf_levels=(spf,)), backend="chip"
            )
            if not np.array_equal(
                grid.class_counts()[:, :, column], single.class_counts()[:, :, 0]
            ):
                failures.append(
                    f"chip grid class counts at spf={spf} diverged from the "
                    f"single-level request"
                )
        invariant = (
            "class counts bit-identical to vectorized; multi-copy image "
            "bit-identical to per-copy loop (incl. stochastic synapses); "
            "spf grid bit-identical to single-level requests"
        )
    elif args.backend == "board":
        counters = replace(request, collect_spike_counters=True)
        for variant in (counters, replace(counters, stochastic_synapses=True)):
            label = "stochastic" if variant.stochastic_synapses else "deterministic"
            chip = session.evaluate(variant, backend="chip")
            board = session.evaluate(variant, backend="board")
            if not np.array_equal(board.class_counts(), chip.class_counts()):
                failures.append(
                    f"board class counts diverged from the chip backend ({label})"
                )
            if not np.array_equal(board.spike_counters, chip.spike_counters):
                failures.append(
                    f"board spike counters diverged from the chip backend ({label})"
                )
        # Split path: chips too small for one copy force every copy across
        # chip boundaries; link handoff must not change a single count.
        cores = request.model.architecture.cores_per_network
        small_chip = ChipConfig(grid_shape=(1, max(1, (cores + 1) // 2)))
        split = BoardBackend(chip_config=small_chip, link_delay=1).evaluate(counters)
        chip_ref = session.evaluate(counters, backend="chip")
        if not np.array_equal(split.class_counts(), chip_ref.class_counts()):
            failures.append(
                "split-copy board class counts diverged from the chip backend"
            )
        if not np.array_equal(split.spike_counters, chip_ref.spike_counters):
            failures.append(
                "split-copy board spike counters diverged from the chip backend"
            )
        invariant = (
            "counts and spike counters bit-identical to the chip backend "
            "(incl. stochastic synapses and split copies under link delay)"
        )
    else:
        again = session.evaluate(request, backend="reference")
        if not np.array_equal(result.scores, again.scores):
            failures.append("reference backend is not deterministic")
        invariant = "deterministic re-evaluation"
    accuracy = result.mean_accuracy
    if not (np.all(accuracy >= 0.0) and np.all(accuracy <= 1.0)):
        failures.append(f"accuracy grid out of [0, 1]: {accuracy.tolist()}")

    record = {
        "benchmark": "api-backend-smoke",
        "backend": args.backend,
        "invariant": invariant,
        "config": {
            "copy_levels": list(request.copy_levels),
            "spf_levels": list(request.spf_levels),
            "repeats": request.repeats,
            "samples": int(result.labels.shape[0]),
        },
        "seconds": seconds,
        "mean_accuracy": accuracy.tolist(),
        "ok": not failures,
        "failures": failures,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")
    print(json.dumps(record, indent=2))
    if failures:
        raise SystemExit("; ".join(failures))


if __name__ == "__main__":
    main()
