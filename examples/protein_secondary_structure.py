#!/usr/bin/env python
"""Protein secondary-structure classification on TrueNorth (test bench 4).

The paper's second application domain (Table 1 / Table 3): classify the
secondary structure at the centre of a 17-residue window (helix / sheet /
coil, 357 features reshaped to a 19x19 grid) using 4 neuro-synaptic cores.
This example trains both learning methods on the synthetic RS130 stand-in,
deploys them, and reports the accuracy and core-occupation comparison.

Run with:  python examples/protein_secondary_structure.py
"""

from __future__ import annotations

from repro.api import EvalRequest, Session
from repro.experiments.runner import ExperimentContext


def main() -> None:
    context = ExperimentContext(
        testbench=4,  # RS130, block stride 3, one hidden layer on 4 cores
        train_size=2000,
        test_size=500,
        epochs=14,
        eval_samples=300,
        repeats=3,
        seed=0,
    )
    config = context.config
    print(
        f"Test bench {config.index}: dataset {config.dataset.upper()}, "
        f"block stride {config.block_stride}, cores per layer {config.cores_per_layer} "
        f"(paper Caffe accuracy {config.paper_caffe_accuracy:.4f})"
    )

    tea = context.result("tea")
    biased = context.result("biased")
    print(f"\nTea    float accuracy: {tea.float_accuracy:.4f}")
    print(f"Biased float accuracy: {biased.float_accuracy:.4f}")
    print("(The paper reports ~69% for RS130 — a deliberately hard, low-margin task.)")

    dataset = context.evaluation_dataset()
    print("\nDeployed accuracy (copies x spikes-per-frame):")
    # One grid request per method covers all three reported configurations
    # in a single engine pass (every point is a nested prefix of the
    # largest), served through the unified evaluation facade.
    session = Session(backend="vectorized")
    for name, result in (("Tea", tea), ("Biased", biased)):
        evaluation = session.evaluate(
            EvalRequest(
                model=result.model, dataset=dataset, copy_levels=(1, 4),
                spf_levels=(1, 4), repeats=context.repeats, seed=1,
            )
        )
        for copies, spf in ((1, 1), (4, 1), (1, 4)):
            cores = int(evaluation.cores[evaluation.copy_levels.index(copies)])
            print(
                f"  {name:6s} {copies:2d} copies x {spf} spf "
                f"({cores:3d} cores): {evaluation.accuracy_at(copies, spf):.4f}"
            )

    print(
        "\nAs on MNIST, the biased model loses less accuracy at low duplication, "
        "so the same accuracy is reached with fewer cores or fewer spikes per frame."
    )


if __name__ == "__main__":
    main()
