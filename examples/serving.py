#!/usr/bin/env python
"""Serving: evaluate trained models over HTTP through ``repro.serve``.

The serve-style workload end to end, in one process:

1. train the Tea and probability-biased models on test bench 1 and host
   them in a :class:`repro.serve.ModelRegistry`,
2. boot the :class:`repro.serve.EvalServer` on an ephemeral port — an
   admission-controlled bounded queue in front of a worker pool whose
   batched ``Session.submit``/``flush`` drains coalesce same-fingerprint
   requests onto shared engine passes,
3. score both models over HTTP with :class:`repro.serve.ServeClient`
   (responses are bit-identical to a direct ``Session.evaluate``),
4. read ``/metrics`` (queue counters, latency percentiles, cache hit
   rate) and demonstrate the explicit 429 + ``Retry-After`` overload
   path with a polite retry loop.

Run with:  python examples/serving.py

For a long-running server use the console entry point instead::

    repro-serve --port 8000 --methods tea,biased
    curl -s localhost:8000/v1/models | python -m json.tool
"""

from __future__ import annotations

import json
import time

from repro.experiments.runner import ExperimentContext
from repro.serve import (
    EvalServer,
    ModelRegistry,
    ServeClient,
    ServeConfig,
    ServiceOverloadedError,
)


def evaluate_with_retry(client: ServeClient, attempts: int = 5, **request):
    """Client-side half of admission control: honor Retry-After and retry."""
    for _ in range(attempts):
        try:
            return client.evaluate(**request)
        except ServiceOverloadedError as error:
            print(f"   429: backing off {error.retry_after:.0f}s as instructed")
            time.sleep(min(error.retry_after, 2.0))
    raise SystemExit("service stayed overloaded; giving up")


def main() -> None:
    print("== Training the hosted models (test bench 1) ==")
    context = ExperimentContext(
        train_size=1200,
        test_size=300,
        epochs=12,
        eval_samples=200,
        repeats=2,
        seed=0,
    )
    registry = ModelRegistry.from_context(context, methods=("tea", "biased"))

    config = ServeConfig(port=0, workers=2, queue_depth=32, batch_max=8)
    with EvalServer(registry, config) as server:
        client = ServeClient(port=server.port)
        print(f"\n== Serving on {server.url} ==")
        print("hosted:", json.dumps(client.models()["models"], indent=2))

        print("\n== POST /v1/evaluate: Tea vs biased at low duplication ==")
        for model in ("tea", "biased"):
            result = evaluate_with_retry(
                client,
                model=model,
                copy_levels=[1, 2, 4],
                spf_levels=[1, 2],
                repeats=2,
                seed=0,
            )
            print(
                f"{model:>6}: accuracy(1 copy, 1 spf) = "
                f"{result.accuracy_at(1, 1):.4f}, "
                f"accuracy(4 copies, 2 spf) = {result.accuracy_at(4, 2):.4f} "
                f"[served by the {result.backend!r} backend]"
            )

        print("\n== Same request again: served from the shared score cache ==")
        start = time.perf_counter()
        evaluate_with_retry(
            client,
            model="tea",
            copy_levels=[1, 2, 4],
            spf_levels=[1, 2],
            repeats=2,
            seed=0,
        )
        print(f"   answered in {time.perf_counter() - start:.3f}s")

        print("\n== GET /metrics ==")
        metrics = client.metrics()
        print(json.dumps({k: metrics[k] for k in ("requests", "cache")}, indent=2))


if __name__ == "__main__":
    main()
