#!/usr/bin/env python
"""Quickstart: train, deploy, and compare Tea vs probability-biased learning.

This is the smallest end-to-end walk through the reproduction's public API:

1. build the paper's test bench 1 (synthetic MNIST, 4 neuro-synaptic cores),
2. train the baseline Tea model and the probability-biased model,
3. deploy both onto (simulated) TrueNorth cores with Bernoulli-sampled
   connectivity and score them through one :class:`repro.api.Session`
   (the unified facade over the vectorized, chip, and reference backends),
4. compare deployed accuracy at the lowest duplication level (1 network
   copy, 1 spike per frame), where the paper's method helps the most.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import EvalRequest, Session
from repro.core.penalties import pole_fraction
from repro.experiments.runner import ExperimentContext


def main() -> None:
    # A laptop-scale context: smaller synthetic dataset and fewer epochs than
    # the benchmark harness uses, so the whole script runs in ~10 seconds.
    context = ExperimentContext(
        train_size=1200,
        test_size=300,
        epochs=12,
        eval_samples=200,
        repeats=3,
        seed=0,
    )

    print("== Training (test bench 1: synthetic MNIST on 4 neuro-synaptic cores) ==")
    tea = context.result("tea")
    biased = context.result("biased")
    print(f"Tea    float accuracy: {tea.float_accuracy:.4f}")
    print(f"Biased float accuracy: {biased.float_accuracy:.4f}")

    print("\n== Connectivity-probability distributions ==")
    tea_pole = pole_fraction(tea.model.all_probabilities())
    biased_pole = pole_fraction(biased.model.all_probabilities())
    print(f"Tea    probabilities near a deterministic pole: {100 * tea_pole:.1f}%")
    print(f"Biased probabilities near a deterministic pole: {100 * biased_pole:.1f}%")

    print("\n== Deployment at 1 network copy, 1 spike per frame ==")
    # One session serves every request; submitting both before flushing lets
    # the facade coalesce compatible requests onto shared engine passes.
    session = Session(backend="vectorized")
    dataset = context.evaluation_dataset()
    pending = {
        name: session.submit(
            EvalRequest(
                model=result.model,
                dataset=dataset,
                copy_levels=(1,),
                spf_levels=(1,),
                repeats=3,
                seed=1,
            )
        )
        for name, result in (("Tea", tea), ("Biased", biased))
    }
    session.flush()
    for name, handle in pending.items():
        result = handle.result()
        print(
            f"{name:6s} deployed accuracy: {result.accuracy_at(1, 1):.4f} "
            f"(+/- {float(result.std_accuracy[0, 0]):.4f}) "
            f"using {int(result.cores[0])} cores"
        )

    print(
        "\nThe probability-biased model retains more of its floating-point "
        "accuracy after quantized deployment because nearly all of its "
        "synaptic connections are deterministic (paper Sections 3.2-3.3)."
    )


if __name__ == "__main__":
    main()
