#!/usr/bin/env python
"""Core-occupation trade-off study (the paper's Table 2(a) workflow).

Sweeps the number of spatial network copies for the Tea-trained and the
probability-biased models, then matches accuracy levels to report how many
neuro-synaptic cores the biased method saves — the co-optimization headline
of the paper (up to 68.8% fewer cores at equal or better accuracy).

Run with:  python examples/core_occupation_tradeoff.py
"""

from __future__ import annotations

from repro.api import BoardBackend, EvalRequest, Session
from repro.board import BoardConfig, board_shape_for
from repro.eval.comparison import core_occupation_comparison, label_points
from repro.experiments.runner import ExperimentContext
from repro.mapping.corelet import build_corelets
from repro.mapping.placement import place_on_board
from repro.truenorth.config import ChipConfig
from repro.utils.tables import format_table


def main() -> None:
    context = ExperimentContext(
        train_size=1500,
        test_size=350,
        epochs=14,
        eval_samples=250,
        repeats=2,
        seed=0,
    )
    dataset = context.evaluation_dataset()
    tea = context.result("tea")
    biased = context.result("biased")

    copy_levels_tea = (1, 2, 3, 4, 5, 7, 9, 16)
    copy_levels_biased = (1, 2, 3, 4)
    print("Sweeping spatial duplication (this deploys and evaluates both models)...")
    session = Session(backend="vectorized")
    tea_sweep = session.evaluate(
        EvalRequest(
            model=tea.model, dataset=dataset, copy_levels=copy_levels_tea,
            spf_levels=(1,), repeats=context.repeats, seed=context.seed,
        )
    ).sweep(label="tea")
    biased_sweep = session.evaluate(
        EvalRequest(
            model=biased.model, dataset=dataset, copy_levels=copy_levels_biased,
            spf_levels=(1,), repeats=context.repeats, seed=context.seed,
        )
    ).sweep(label="biased")

    tea_points = label_points(
        tea_sweep.copy_levels,
        [tea_sweep.accuracy_at(c, 1) for c in tea_sweep.copy_levels],
        [int(core) for core in tea_sweep.cores],
        prefix="N",
    )
    biased_points = label_points(
        biased_sweep.copy_levels,
        [biased_sweep.accuracy_at(c, 1) for c in biased_sweep.copy_levels],
        [int(core) for core in biased_sweep.cores],
        prefix="B",
    )
    rows, average_saving, max_saving = core_occupation_comparison(tea_points, biased_points)

    table_rows = []
    for row in rows:
        table_rows.append(
            (
                row.baseline.label,
                f"{row.baseline.accuracy:.4f}",
                int(row.baseline.cost),
                row.ours.label if row.ours else "-",
                f"{row.ours.accuracy:.4f}" if row.ours else "-",
                int(row.ours.cost) if row.ours else "-",
                f"{100 * row.saved_fraction:.1f}%",
            )
        )
    print(
        format_table(
            ["tea", "accuracy", "cores", "biased", "accuracy", "cores", "saved"],
            table_rows,
            title="Core occupation at matched accuracy (1 spike per frame)",
        )
    )
    print(
        f"\nAverage core saving over matched rows: {100 * average_saving:.1f}% "
        f"(paper: 49.5%); best case: {100 * max_saving:.1f}% (paper: 68.8%)."
    )

    board_extension(tea, dataset, repeats=context.repeats, seed=context.seed)


def board_extension(tea, dataset, repeats: int, seed: int) -> None:
    """Continue the duplication sweep past one chip's core budget.

    The sweep above treats core occupation as unbounded, but a physical
    TrueNorth chip caps it: once ``copies x cores_per_network`` exceeds the
    chip's core grid, duplication has to spill onto neighbouring chips.
    The ``board`` backend carries the sweep across that budget — copies
    spread over a mesh of chips (splitting any copy larger than one chip),
    with the exact latency model extended board-wide — so the accuracy
    curve keeps going where the single-chip engine would refuse.

    A study-sized chip (budget: four copies) stands in for the 4096-core
    part so the overflow is visible without thousands of copies.
    """
    cores = tea.model.architecture.cores_per_network
    chip = ChipConfig(grid_shape=(2, 2 * cores))
    budget = chip.capacity // cores
    levels = tuple(range(budget - 1, 2 * budget + 1, 1))
    print(
        f"\nSingle-chip budget at {cores} cores/copy on a "
        f"{chip.capacity}-core chip: {budget} copies.  Continuing the "
        "duplication sweep on the board backend..."
    )
    sweep = (
        BoardBackend(chip_config=chip)
        .evaluate(
            EvalRequest(
                model=tea.model, dataset=dataset, copy_levels=levels,
                spf_levels=(1,), repeats=repeats, seed=seed, max_samples=120,
            )
        )
        .sweep(label="tea/board")
    )

    network = build_corelets(tea.model)
    table_rows = []
    for copies in levels:
        shape = board_shape_for(cores, copies, chip)
        placement = place_on_board(
            network, copies, BoardConfig(grid_shape=shape, chip_config=chip)
        )
        stats = placement.mesh_statistics()
        table_rows.append(
            (
                copies,
                copies * cores,
                f"{shape[0]}x{shape[1]}",
                placement.occupied_chips(),
                stats["split_copies"],
                stats["max_chip_distance"],
                f"{sweep.accuracy_at(copies, 1):.4f}",
            )
        )
    print(
        format_table(
            ["copies", "cores", "board", "chips", "split", "max hop", "accuracy"],
            table_rows,
            title="Duplication past the single-chip budget (board backend)",
        )
    )


if __name__ == "__main__":
    main()
